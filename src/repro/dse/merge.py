"""Combine sharded sweep artifacts back into one result set.

A distributed sweep runs ``explore(..., shard="i/n", progress=...)``
once per host; each shard leaves behind (a) its JSON-lines progress
store of :class:`~repro.dse.explorer.CandidateOutcome` records and (b),
when given a persistent ``cache``, its share of the result-cache
entries.  This module is the reassembly step:

* :func:`merge_progress_stores` concatenates shard progress stores into
  one store **deduplicated by machine digest** with deterministic
  precedence — a succeeded record always beats a failed one, otherwise
  the first-listed source wins.  The merged header drops the ``shard``
  key, so the output is directly resumable by the *unsharded* sweep:
  ``explore(space, ..., progress=merged)`` verifies completeness and
  evaluates only candidates no shard covered.
* Result-cache chunks are merged separately with
  :func:`repro.engine.merge_result_stores` (the CLI's ``dse merge
  --cache-dir ... --cache-out ...``), building the shared warm fabric
  serving replicas mount read-only.

Shard stores are validated against each other before merging: headers
must agree on everything except ``shard`` (same space, strategy +
options digest, workload signature, batch, strategy version), so
accidentally merging two different sweeps fails loudly instead of
producing a silently mixed result set.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .explorer import CandidateOutcome, ProgressMismatchError

__all__ = ["MergeReport", "merge_progress_stores", "read_progress_store"]


@dataclass(frozen=True)
class MergeReport:
    """Counters of one :func:`merge_progress_stores` run."""

    #: How many shard stores were read.
    sources: int
    #: Total records across all sources (before dedup).
    total: int
    #: Distinct machine digests written to the merged store.
    merged: int
    #: Records dropped as duplicates of an earlier (or better) record.
    duplicates: int
    #: Failed records replaced by a later source's succeeded record.
    upgraded: int
    #: Succeeded records in the merged store.
    succeeded: int
    #: Failed records in the merged store.
    failed: int

    def summary(self) -> str:
        """One-line human-readable description."""
        upgraded_note = f", {self.upgraded} upgraded" if self.upgraded else ""
        failed_note = f", {self.failed} failed" if self.failed else ""
        return (
            f"merged {self.sources} shard stores: {self.merged} candidates "
            f"({self.duplicates} duplicates dropped{upgraded_note}"
            f"{failed_note})"
        )

    def to_json_dict(self) -> Dict[str, Any]:
        """JSON-able form for ``dse merge --json``."""
        return {
            "sources": self.sources,
            "total": self.total,
            "merged": self.merged,
            "duplicates": self.duplicates,
            "upgraded": self.upgraded,
            "succeeded": self.succeeded,
            "failed": self.failed,
        }


def read_progress_store(
    path: Union[str, Path]
) -> Tuple[Dict[str, Any], List[CandidateOutcome]]:
    """Read one progress store: ``(header, outcomes in append order)``.

    Streams line-by-line; a torn trailing line (writer died mid-append)
    is tolerated exactly as on resume.
    """
    path = Path(path).expanduser()
    outcomes: List[CandidateOutcome] = []
    with path.open("r", encoding="utf-8") as handle:
        first = handle.readline()
        if not first:
            raise ProgressMismatchError(f"progress store {path} is empty")
        try:
            header = json.loads(first)
        except json.JSONDecodeError:
            raise ProgressMismatchError(
                f"progress store {path} has an unreadable header"
            ) from None
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise ProgressMismatchError(
                f"progress store {path} has no sweep header"
            )
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                outcomes.append(CandidateOutcome.from_dict(json.loads(line)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                continue
    return header, outcomes


def _sweep_identity(header: Mapping[str, Any]) -> Dict[str, Any]:
    """A header with its shard selector stripped — the sweep identity."""
    return {key: value for key, value in header.items() if key != "shard"}


def merge_progress_stores(
    dest: Union[str, Path],
    sources: Sequence[Union[str, Path]],
    *,
    require_same_sweep: bool = True,
) -> MergeReport:
    """Merge shard progress stores into one, deduped by machine digest.

    Precedence is deterministic: a ``status="ok"`` record always
    replaces a failed one for the same digest (whichever source order
    they arrive in); between records of equal status the first-listed
    source wins.  The merged store's header is the common sweep identity
    without the ``shard`` key, so the unsharded sweep resumes from it
    directly.  ``require_same_sweep=False`` skips the header cross-check
    (merging stores whose sweeps legitimately differ — e.g. the same
    space re-swept after a strategy-version bump — is then the caller's
    responsibility).

    The merged store is written atomically (temp file + rename): an
    interrupted merge never leaves a half-written ``dest`` behind.
    """
    if not sources:
        raise ValueError("merge needs at least one source progress store")
    identity: Optional[Dict[str, Any]] = None
    order: List[str] = []
    best: Dict[str, CandidateOutcome] = {}
    total = duplicates = upgraded = 0
    for source in sources:
        header, outcomes = read_progress_store(source)
        if identity is None:
            identity = _sweep_identity(header)
        elif require_same_sweep and _sweep_identity(header) != identity:
            differing = sorted(
                key
                for key in set(identity) | set(_sweep_identity(header))
                if identity.get(key) != _sweep_identity(header).get(key)
            )
            raise ProgressMismatchError(
                f"shard store {source} belongs to a different sweep than "
                f"{sources[0]} (differing fields: {differing})"
            )
        for outcome in outcomes:
            total += 1
            digest = outcome.machine_digest
            existing = best.get(digest)
            if existing is None:
                best[digest] = outcome
                order.append(digest)
            elif existing.failed and not outcome.failed:
                best[digest] = outcome
                upgraded += 1
            else:
                duplicates += 1
    assert identity is not None  # sources is non-empty
    dest = Path(dest).expanduser()
    dest.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{dest.name}-", suffix=".tmp", dir=dest.parent
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(identity, sort_keys=True) + "\n")
            for digest in order:
                handle.write(
                    json.dumps(best[digest].to_dict(), sort_keys=True) + "\n"
                )
        os.replace(tmp_name, dest)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    failed = sum(1 for outcome in best.values() if outcome.failed)
    return MergeReport(
        sources=len(sources),
        total=total,
        merged=len(best),
        duplicates=duplicates,
        upgraded=upgraded,
        succeeded=len(best) - failed,
        failed=failed,
    )
