"""Pareto frontiers and per-axis sensitivity over sweep outcomes.

The output of a hardware sweep is a cloud of candidate machines, each
with a predicted network time and a hardware cost (total SRAM bytes,
compute lanes).  The interesting candidates are the **non-dominated**
ones: no other candidate is at least as good on every objective and
strictly better on one.  :func:`pareto_frontier` extracts that set for
any combination of minimized objectives; :func:`axis_sensitivity` and
:func:`sensitivity_summary` answer the buying-advice question — "L2
capacity past 512KiB buys <2%" — by tracking the best achievable time
as a function of one axis.

Objectives name either :class:`~repro.dse.explorer.CandidateOutcome`
attributes (``total_time_seconds``, ``total_sram_bytes``,
``compute_lanes``, ``peak_gflops``, ``cores``) or swept axis paths
(``caches.L2.capacity_bytes``); larger-is-better figures must be
negated by the caller (every objective here is minimized).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from .space import format_axis_value
from .explorer import CandidateOutcome


def objective_value(outcome: CandidateOutcome, objective: str) -> float:
    """Extract one minimized objective from an outcome.

    ``objective`` is an outcome attribute or a swept axis path.
    """
    value = getattr(outcome, objective, None)
    if value is None:
        try:
            value = outcome.parameter(objective)
        except KeyError:
            raise KeyError(
                f"unknown objective {objective!r}: not a CandidateOutcome "
                f"attribute and not a swept axis of "
                f"{outcome.machine_name!r}"
            ) from None
    return float(value)


def dominates(
    a: CandidateOutcome, b: CandidateOutcome, objectives: Sequence[str]
) -> bool:
    """True when ``a`` is at least as good as ``b`` everywhere and
    strictly better somewhere (all objectives minimized)."""
    strictly_better = False
    for objective in objectives:
        va = objective_value(a, objective)
        vb = objective_value(b, objective)
        if va > vb:
            return False
        if va < vb:
            strictly_better = True
    return strictly_better


def pareto_frontier(
    outcomes: Sequence[CandidateOutcome],
    *,
    objectives: Sequence[str] = ("total_time_seconds", "total_sram_bytes"),
) -> List[CandidateOutcome]:
    """Non-dominated subset of ``outcomes`` under minimized ``objectives``.

    Returns frontier members in input order.  Duplicate objective
    vectors are kept once (the first occurrence), so the frontier is
    non-dominated *and* duplicate-free by construction — the property
    the DSE acceptance test pins.  (Report emitters share one scan per
    sweep through :meth:`ExplorationResult.frontier`'s per-instance
    memo.)
    """
    if not outcomes:
        return []
    if len(objectives) < 2:
        raise ValueError("a Pareto frontier needs at least two objectives")
    vectors = [
        tuple(objective_value(o, objective) for objective in objectives)
        for o in outcomes
    ]
    frontier: List[CandidateOutcome] = []
    seen: set = set()
    for index, (outcome, vector) in enumerate(zip(outcomes, vectors)):
        if vector in seen:
            continue
        dominated = False
        for other_index, other_vector in enumerate(vectors):
            if other_index == index:
                continue
            at_least_as_good = all(
                ov <= v for ov, v in zip(other_vector, vector)
            )
            strictly_better = any(
                ov < v for ov, v in zip(other_vector, vector)
            )
            if at_least_as_good and strictly_better:
                dominated = True
                break
        if not dominated:
            frontier.append(outcome)
            seen.add(vector)
    return frontier


def axis_sensitivity(
    outcomes: Sequence[CandidateOutcome], path: str
) -> List[Tuple[Any, float]]:
    """Best achievable predicted time per value of one swept axis.

    Marginalizes over every other axis: for each value the axis takes,
    the minimum ``total_time_seconds`` across all candidates with that
    value.  Returned sorted by axis value.
    """
    best: Dict[Any, float] = {}
    for outcome in outcomes:
        try:
            value = outcome.parameter(path)
        except KeyError:
            continue
        time_s = outcome.total_time_seconds
        if value not in best or time_s < best[value]:
            best[value] = time_s
    return sorted(best.items(), key=lambda pair: pair[0])


def sensitivity_summary(
    outcomes: Sequence[CandidateOutcome],
    axes: Sequence[str],
    *,
    threshold: float = 0.02,
) -> List[str]:
    """One diminishing-returns line per axis.

    For each axis, finds the smallest value beyond which growing it
    further improves the best achievable time by less than
    ``threshold`` (relative) — the "L2 capacity past 512KiB buys <2%"
    statement of the paper's design-space discussion.  Axes whose best
    time keeps improving by more than the threshold all the way up are
    reported as not saturating inside the swept range.
    """
    lines: List[str] = []
    for path in axes:
        curve = axis_sensitivity(outcomes, path)
        if len(curve) < 2:
            continue
        saturation = None
        for index, (value, best_time) in enumerate(curve[:-1]):
            remaining_best = min(time_s for _, time_s in curve[index + 1 :])
            gain = (best_time - remaining_best) / max(best_time, 1e-30)
            if gain < threshold:
                saturation = value
                break
        if saturation is not None:
            lines.append(
                f"{path} past {format_axis_value(path, saturation)} buys "
                f"<{threshold:.0%} predicted time"
            )
        else:
            last = curve[-1][0]
            first_best = curve[0][1]
            last_best = curve[-1][1]
            total_gain = (first_best - last_best) / max(first_best, 1e-30)
            lines.append(
                f"{path} does not saturate within the sweep: best time "
                f"still improving at {format_axis_value(path, last)} "
                f"({total_gain:.1%} better than at the smallest value)"
            )
    return lines
