"""The unified request/result family of the public API.

One set of plain-data types is shared by every optimization path:

* :class:`OptimizeRequest` — what a caller asks for (a network or
  operator list, strategy override, priority, deadline).  The sync
  :class:`~repro.api.session.Session` paths, the async serving engine
  and the TCP wire protocol all consume this one type; the serving
  protocol's JSON-lines framing is a thin encoding of it
  (``to_dict``/``from_dict``), not a parallel hierarchy.
* :class:`OpResult` — one operator's outcome (defined in
  :mod:`repro.engine.network`, re-exported here): the return type of
  ``Session.optimize(op)`` and the per-layer slice of every
  :class:`NetworkResult`.
* :class:`NetworkResult` — the aggregated outcome of optimizing every
  operator of one network (also the payload the serving protocol's
  ``OptimizeResponse`` is projected from).
* :class:`StrategyResult` — the strategy-level figure inside every
  :class:`OpResult` (what the persistent cache stores).

Historically :class:`OptimizeRequest` lived in
:mod:`repro.serving.protocol`; it is defined here now and re-exported
there, so all pre-existing imports keep working.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..core.tensor_spec import ConvSpec
from ..engine.network import NetworkResult, OpResult
from ..engine.serialization import spec_from_dict, spec_to_dict
from ..engine.strategy import StrategyResult

_REQUEST_COUNTER = itertools.count(1)


def next_request_id(prefix: str = "req") -> str:
    """Process-unique request id (monotonic; no clock or randomness)."""
    return f"{prefix}-{next(_REQUEST_COUNTER)}"


@dataclass(frozen=True)
class OptimizeRequest:
    """One client's ask: optimize a network under a priority and deadline.

    ``network`` is a Table 1 name or an explicit operator list.  Lower
    ``priority`` values are served first (0 = most urgent); ties are
    FIFO.  ``deadline_s`` is a relative budget from submission: a request
    still queued (or mid-flight) when it runs out fails with an
    ``ExpiredEvent`` instead of occupying solve capacity.
    ``strategy``/``strategy_options`` override the server's defaults.
    The priority/deadline fields only apply on the async serving path;
    the synchronous Session paths execute immediately and ignore them.

    ``trace_id``/``parent_span`` carry distributed-tracing context over
    the wire: a traced client stamps its active span here so the
    server's ``serving.request`` span joins the client's trace instead
    of starting a fresh one.  ``client_id`` attributes queue/latency
    telemetry to a tenant; the TCP transport defaults it to the peer
    address when the client leaves it unset.  All three are optional
    and omitted from the wire encoding when unset, so old clients and
    servers interoperate unchanged.
    """

    network: Union[str, Tuple[ConvSpec, ...]]
    request_id: str = field(default_factory=next_request_id)
    strategy: Optional[str] = None
    strategy_options: Mapping[str, Any] = field(default_factory=dict)
    batch: int = 1
    priority: int = 10
    deadline_s: Optional[float] = None
    trace_id: Optional[str] = None
    parent_span: Optional[str] = None
    client_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        if isinstance(self.network, str):
            network: Any = self.network
        else:
            network = [spec_to_dict(spec) for spec in self.network]
        payload: Dict[str, Any] = {
            "request_id": self.request_id,
            "network": network,
            "strategy": self.strategy,
            "strategy_options": dict(self.strategy_options),
            "batch": self.batch,
            "priority": self.priority,
            "deadline_s": self.deadline_s,
        }
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
        if self.parent_span is not None:
            payload["parent_span"] = self.parent_span
        if self.client_id is not None:
            payload["client_id"] = self.client_id
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "OptimizeRequest":
        network = payload["network"]
        if not isinstance(network, str):
            network = tuple(spec_from_dict(entry) for entry in network)
        deadline_s = payload.get("deadline_s")
        return cls(
            network=network,
            request_id=payload.get("request_id") or next_request_id(),
            strategy=payload.get("strategy"),
            strategy_options=dict(payload.get("strategy_options") or {}),
            batch=int(payload.get("batch", 1)),
            priority=int(payload.get("priority", 10)),
            deadline_s=None if deadline_s is None else float(deadline_s),
            trace_id=payload.get("trace_id"),
            parent_span=payload.get("parent_span"),
            client_id=payload.get("client_id"),
        )


__all__ = [
    "NetworkResult",
    "OpResult",
    "OptimizeRequest",
    "StrategyResult",
    "next_request_id",
]
