"""Workload builders: construct operators and networks without
constructor-argument soup.

The core :class:`~repro.core.tensor_spec.ConvSpec` is deliberately
explicit (eleven fields mirroring the paper's notation); callers of the
public API almost never want to spell all of them.  This module is the
friendly layer on top:

* :func:`conv` — a conv2d operator in Table 1 vocabulary (``k``/``c``
  channel counts, square ``hw`` image, square ``kernel``), with
  ``padding="same"`` as the default;
* :func:`matmul` — a matrix multiplication ``C[m, n] = A[m, k] @
  B[k, n]`` phrased as the equivalent 1x1 convolution (the mapping the
  differential test layer uses);
* :func:`network` — all operators of a Table 1 network, optionally
  truncated to its head;
* :func:`operator` — one Table 1 operator by name (``"R9"``);
* :func:`parse` — one string reference to any of the above:
  ``"resnet18"`` (whole network), ``"resnet18/R3"`` or ``"resnet18/3"``
  (one layer of a network), ``"R3"`` (bare Table 1 operator name).
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..core.tensor_spec import ConvSpec
from ..workloads.benchmarks import (
    benchmark_by_name,
    network_benchmarks,
    network_names,
)


def _same_padding(kernel: int, dilation: int) -> int:
    """Half-kernel ("same") padding for a square kernel."""
    return ((kernel - 1) * dilation) // 2


def conv(
    k: int,
    c: int,
    hw: Optional[int] = None,
    kernel: int = 3,
    *,
    h: Optional[int] = None,
    w: Optional[int] = None,
    kernel_h: Optional[int] = None,
    kernel_w: Optional[int] = None,
    stride: int = 1,
    dilation: int = 1,
    padding: Union[int, str] = "same",
    batch: int = 1,
    name: Optional[str] = None,
    dtype_bytes: int = 4,
) -> ConvSpec:
    """Build a conv2d operator in Table 1 vocabulary.

    ``k``/``c`` are the output/input channel counts, ``hw`` the square
    input extent (or ``h``/``w`` separately), ``kernel`` the square
    kernel size (or ``kernel_h``/``kernel_w``).  ``padding`` defaults to
    ``"same"`` — half-kernel padding, the standard configuration of the
    benchmark networks — or takes an explicit integer.

    >>> conv(256, 256, 14, 3).describe()      # R9 of Table 1
    'conv: K=256 C=256 H/W=14 R/S=3 stride=1 ...'
    """
    if hw is None and (h is None or w is None):
        raise ValueError("pass a square extent `hw` or both `h` and `w`")
    in_h = h if h is not None else hw
    in_w = w if w is not None else hw
    ker_h = kernel_h if kernel_h is not None else kernel
    ker_w = kernel_w if kernel_w is not None else kernel
    if isinstance(padding, str):
        if padding == "same":
            pad = _same_padding(max(ker_h, ker_w), dilation)
        elif padding == "valid":
            pad = 0
        else:
            raise ValueError(
                f"padding must be an integer, 'same' or 'valid', got {padding!r}"
            )
    else:
        pad = int(padding)
    return ConvSpec(
        name=name or "conv",
        batch=batch,
        out_channels=k,
        in_channels=c,
        in_height=in_h,
        in_width=in_w,
        kernel_h=ker_h,
        kernel_w=ker_w,
        stride=stride,
        dilation=dilation,
        padding=pad,
        dtype_bytes=dtype_bytes,
    )


def matmul(
    m: int,
    n: int,
    k: int,
    *,
    name: Optional[str] = None,
    dtype_bytes: int = 4,
) -> ConvSpec:
    """Build ``C[m, n] = A[m, k] @ B[k, n]`` as the equivalent conv2d.

    A matrix multiplication is a 1x1 convolution over an ``m`` x 1 image
    with ``k`` input and ``n`` output channels, so the analytical model,
    every strategy and the cache apply unchanged.
    """
    return ConvSpec(
        name=name or f"matmul-{m}x{n}x{k}",
        batch=1,
        out_channels=n,
        in_channels=k,
        in_height=m,
        in_width=1,
        kernel_h=1,
        kernel_w=1,
        stride=1,
        dilation=1,
        padding=0,
        dtype_bytes=dtype_bytes,
    )


def network(
    name: str, *, batch: int = 1, layers: Optional[int] = None
) -> List[ConvSpec]:
    """All conv2d operators of one Table 1 network, in the paper's order.

    ``layers`` truncates to the network's head (quick runs); it must
    keep at least one operator.
    """
    specs = network_benchmarks(name, batch=batch)
    if layers is not None:
        if layers < 1:
            raise ValueError(f"layers must be >= 1, got {layers}")
        specs = specs[:layers]
    return specs


def operator(name: str, *, batch: int = 1) -> ConvSpec:
    """One Table 1 operator by name (``"Y5"``, ``"R9"``, ``"M2"``)."""
    return benchmark_by_name(name, batch=batch)


def parse(
    reference: str, *, batch: int = 1
) -> Union[ConvSpec, List[ConvSpec]]:
    """Resolve one workload reference string.

    Accepted forms (all case-insensitive on the network part):

    * ``"resnet18"`` — a whole Table 1 network (returns the operator list);
    * ``"resnet18/R3"`` — one named layer of a network (returns the spec;
      the layer must actually belong to that network);
    * ``"resnet18/3"`` — one layer by 1-based Table 1 position;
    * ``"R3"`` — a bare Table 1 operator name.

    Raises :class:`ValueError` for malformed references and
    :class:`KeyError` for unknown networks/operators.
    """
    if not isinstance(reference, str):
        raise TypeError(f"reference must be a string, got {type(reference).__name__}")
    ref = reference.strip()
    if not ref:
        raise ValueError("empty workload reference")
    if ref.count("/") > 1:
        raise ValueError(
            f"malformed workload reference {reference!r}; "
            "expected 'network', 'network/layer' or 'layer'"
        )
    if "/" in ref:
        net_part, layer_part = (part.strip() for part in ref.split("/"))
        if not net_part or not layer_part:
            raise ValueError(f"malformed workload reference {reference!r}")
        specs = network_benchmarks(net_part, batch=batch)  # KeyError on bad net
        if layer_part.isdigit():
            index = int(layer_part)
            if not 1 <= index <= len(specs):
                raise KeyError(
                    f"network {net_part!r} has layers 1..{len(specs)}, "
                    f"got {index}"
                )
            return specs[index - 1]
        for spec in specs:
            if spec.name.lower() == layer_part.lower():
                return spec
        raise KeyError(
            f"no layer {layer_part!r} in network {net_part!r}; "
            f"available: {[spec.name for spec in specs]}"
        )
    if ref.lower() in network_names():
        return network_benchmarks(ref, batch=batch)
    return benchmark_by_name(ref, batch=batch)  # KeyError on bad operator
