"""The unified public API: one Session façade, one workload vocabulary.

Everything the repo can do — single-operator analytical search, whole-
network optimization with dedup/caching/fan-out, async serving with
coalescing and progress streaming, cache warming — is reachable through
one import::

    from repro.api import Session, conv

    session = Session(machine="i7-9700k", strategy="mopt",
                      strategy_options={"threads": 8, "measure": False})
    net = session.optimize("resnet18")          # NetworkResult
    op = session.optimize("resnet18/R9")        # OpResult (one layer)
    op2 = session.optimize(conv(256, 256, 14))  # OpResult (built ad hoc)

and the matching command line is ``python -m repro optimize|serve|bench|
warm|list|demo``.

* :class:`Session` — the façade (see :mod:`repro.api.session`); accepts
  machines/strategies/caches by object or by name.
* :mod:`repro.api.spec` — workload builders: :func:`conv`,
  :func:`matmul`, :func:`network`, :func:`operator` and the string
  reference resolver :func:`parse` (``"resnet18"``, ``"resnet18/R3"``,
  ``"R3"``).
* :mod:`repro.api.types` — the request/result family shared by core,
  engine and serving: :class:`OptimizeRequest`, :class:`OpResult`,
  :class:`NetworkResult`, :class:`StrategyResult`.
"""

from .session import Session, WarmCacheReport, optimize
from .spec import conv, matmul, network, operator, parse
from .types import (
    NetworkResult,
    OpResult,
    OptimizeRequest,
    StrategyResult,
    next_request_id,
)

__all__ = [
    "NetworkResult",
    "OpResult",
    "OptimizeRequest",
    "OptimizeResponse",
    "Session",
    "StrategyResult",
    "WarmCacheReport",
    "conv",
    "matmul",
    "network",
    "next_request_id",
    "operator",
    "optimize",
    "parse",
]


def __getattr__(name: str):
    # OptimizeResponse is the wire projection living in the serving
    # layer; importing it here eagerly would be a circular import
    # (serving's protocol module imports repro.api.types).
    if name == "OptimizeResponse":
        from ..serving.protocol import OptimizeResponse

        return OptimizeResponse
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
