"""The :class:`Session` façade: one front door for every optimization path.

A session binds the three things every optimization needs — a machine, a
search strategy and a result cache — and exposes every execution mode
over them:

* :meth:`Session.optimize` — synchronous; a single operator returns an
  :class:`~repro.api.types.OpResult`, a network (name or operator list)
  returns a :class:`~repro.api.types.NetworkResult`;
* :meth:`Session.optimize_many` — a batch of operators/networks solved
  together: all items' distinct shapes are deduplicated *across the
  whole batch* and fanned out once;
* :meth:`Session.optimize_async` — delegates to the async serving
  engine (:mod:`repro.serving`): bounded queueing, single-flight
  coalescing with other in-flight requests, streaming per-operator
  progress events;
* :meth:`Session.warm_cache` — pre-solve workloads into the session's
  cache (the cache-warming entry the ROADMAP asked for), with a
  ``dry_run`` mode that only reports what is missing.

Machines, strategies and caches are accepted **by object or by name**:
machine names resolve through
:data:`repro.machine.presets.machine_registry`, strategy names through
:data:`repro.engine.strategy.strategy_registry`, and a string/path cache
becomes a persistent :class:`~repro.engine.cache.ResultCache` rooted
there.

    from repro.api import Session

    session = Session(machine="i7-9700k", strategy="mopt",
                      strategy_options={"threads": 8, "measure": False},
                      cache="~/.cache/repro-results")
    print(session.optimize("resnet18").summary())      # whole network
    print(session.optimize("resnet18/R9").gflops)      # one layer
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.tensor_spec import ConvSpec
from ..engine.cache import ResultCache, resolve_cache
from ..engine.network import (
    NetworkOptimizer,
    NetworkResult,
    OpResult,
    build_network_result,
    dedup_specs,
)
from ..engine.serialization import spec_shape_key
from ..engine.strategy import SearchStrategy, StrategyResult, get_strategy
from ..machine.presets import get_machine
from ..machine.spec import MachineSpec
from ..obs import trace as obs_trace
from ..obs.trace import span
from ..workloads.benchmarks import network_names
from .spec import parse

#: Anything `Session.optimize` accepts: one operator, a workload
#: reference string, or an explicit operator list.
Workload = Union[str, ConvSpec, Sequence[ConvSpec]]


@dataclass(frozen=True)
class WarmCacheReport:
    """Outcome of one :meth:`Session.warm_cache` pass."""

    networks: Tuple[str, ...]
    distinct_operators: int
    already_cached: int
    solved: int
    dry_run: bool
    wall_seconds: float

    @property
    def missing(self) -> int:
        """Shapes not in the cache when the pass started."""
        return self.distinct_operators - self.already_cached

    def summary(self) -> str:
        """One-line human-readable description."""
        action = "would solve" if self.dry_run else "solved"
        return (
            f"warm {list(self.networks)}: {self.distinct_operators} distinct "
            f"operators, {self.already_cached} already cached, "
            f"{action} {self.solved if not self.dry_run else self.missing}, "
            f"wall {self.wall_seconds:.2f} s"
        )


def _resolve_machine(machine: Union[str, MachineSpec]) -> MachineSpec:
    if isinstance(machine, str):
        return get_machine(machine)
    if isinstance(machine, MachineSpec):
        return machine
    raise TypeError(
        f"machine must be a preset name or MachineSpec, got {type(machine).__name__}"
    )


#: Session cache resolution: the shared engine helper at its defaults.
_resolve_cache = resolve_cache


class Session:
    """One configured entry point for every optimization path.

    Parameters
    ----------
    machine:
        Preset name (``"i7-9700k"``, ``"i9-10980xe"``, ``"tiny"``, or
        anything registered via
        :func:`repro.machine.presets.register_machine`) or a
        :class:`~repro.machine.spec.MachineSpec`.
    strategy:
        Registry name (``"mopt"``, ``"onednn"``, ...) configured through
        ``strategy_options``, or a ready
        :class:`~repro.engine.strategy.SearchStrategy` instance.
    strategy_options:
        Keyword options forwarded to the registry factory (by-name
        strategies only).
    cache:
        ``None`` (default) — a fresh in-memory
        :class:`~repro.engine.cache.ResultCache` private to the session;
        a directory path — a persistent cache rooted there (a
        ``"chunked:"`` prefix, or an existing chunked layout, selects
        the sweep-scale
        :class:`~repro.engine.chunk_store.ChunkedResultStore` backend);
        a :class:`ResultCache` or disk store instance — shared as-is;
        ``False`` — caching off.
    executor / max_workers:
        Fan-out configuration of the synchronous paths (see
        :class:`~repro.engine.network.NetworkOptimizer`).
    server_config:
        Optional :class:`~repro.serving.server.ServerConfig` for the
        async path's embedded server.
    trace:
        ``None`` (default) — tracing off; ``True`` — enable the
        process-wide structured tracer (:mod:`repro.obs.trace`) and
        buffer spans in memory; a path — enable tracing *and* remember
        where :meth:`export_trace` should write the JSON-lines trace.
    """

    def __init__(
        self,
        machine: Union[str, MachineSpec] = "i7-9700k",
        strategy: Union[str, SearchStrategy] = "mopt",
        *,
        strategy_options: Optional[Mapping[str, Any]] = None,
        cache: Union[None, bool, str, Path, ResultCache] = None,
        executor: str = "thread",
        max_workers: Optional[int] = None,
        server_config: Optional[Any] = None,
        trace: Union[None, bool, str, Path] = None,
    ):
        self.machine = _resolve_machine(machine)
        self.cache = _resolve_cache(cache)
        self.trace_path: Optional[Path] = None
        if trace:
            obs_trace.enable()
            if not isinstance(trace, bool):
                self.trace_path = Path(trace).expanduser()
        if isinstance(strategy, str):
            self.strategy: SearchStrategy = get_strategy(
                strategy, **dict(strategy_options or {})
            )
        else:
            if strategy_options:
                raise ValueError(
                    "strategy_options only apply to by-name strategies; "
                    "configure the instance instead"
                )
            self.strategy = strategy
        self.strategy_name = self.strategy.name
        self._optimizer = NetworkOptimizer(
            self.machine,
            self.strategy,
            cache=self.cache,
            executor=executor,
            max_workers=max_workers,
        )
        self._server_config = server_config
        self._server: Optional[Any] = None
        self._client: Optional[Any] = None
        self._server_loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------
    def resolve(
        self, workload: Workload, *, batch: int = 1
    ) -> Union[ConvSpec, List[ConvSpec]]:
        """Resolve one workload argument to a spec or list of specs.

        Strings go through :func:`repro.api.spec.parse` (network names,
        ``"net/layer"`` references, bare operator names); specs and spec
        sequences pass through unchanged.
        """
        if isinstance(workload, ConvSpec):
            return workload
        if isinstance(workload, str):
            return parse(workload, batch=batch)
        specs = list(workload)
        for spec in specs:
            if not isinstance(spec, ConvSpec):
                raise TypeError(
                    f"expected ConvSpec operators, got {type(spec).__name__}"
                )
        return specs

    def characterize(self, workload: Workload, *, batch: int = 1) -> Dict[str, Any]:
        """Strategy self-characterization on one operator (Table 2 rows).

        Delegates to the strategy's optional ``characterize(spec,
        machine)`` hook; raises :class:`TypeError` for strategies that
        do not implement it.
        """
        spec = self.resolve(workload, batch=batch)
        if not isinstance(spec, ConvSpec):
            raise TypeError("characterize takes a single operator")
        hook = getattr(self.strategy, "characterize", None)
        if hook is None:
            raise TypeError(
                f"strategy {self.strategy_name!r} has no characterize() hook"
            )
        return hook(spec, self.machine)

    def describe(self) -> str:
        """One-line description of the session's configuration."""
        tiers = "off"
        if self.cache is not None:
            tiers = "memory" if self.cache.disk is None else (
                f"memory+disk ({self.cache.disk.root})"
            )
        return (
            f"Session(machine={self.machine.name!r}, "
            f"strategy={self.strategy_name!r}, cache={tiers})"
        )

    # ------------------------------------------------------------------
    # synchronous paths
    # ------------------------------------------------------------------
    def optimize(
        self, workload: Workload, *, batch: int = 1
    ) -> Union[OpResult, NetworkResult]:
        """Optimize one operator or one whole network, synchronously.

        A single operator (a :class:`ConvSpec`, ``"R9"`` or
        ``"resnet18/R9"``) returns an :class:`OpResult`; a network name
        or operator list returns a :class:`NetworkResult`.
        """
        resolved = self.resolve(workload, batch=batch)
        if isinstance(resolved, ConvSpec):
            return self._optimize_op(resolved)
        if isinstance(workload, str):
            # A whole-network name reference: ship the name through so
            # the result is labeled "resnet18", not "custom".
            return self._optimizer.optimize(workload.strip(), batch=batch)
        return self._optimizer.optimize(resolved, batch=batch)

    def optimize_many(
        self, workloads: Sequence[Workload], *, batch: int = 1
    ) -> List[Union[OpResult, NetworkResult]]:
        """Optimize a batch of workloads with one deduplicated fan-out.

        All items are resolved first, their distinct operator shapes are
        collected *across the whole batch* (a ResNet-18 request and an
        ``"R9"`` request share one solve), the cache is consulted once,
        and only the missing shapes are fanned out.  Results come back
        in input order, each with the type :meth:`optimize` would have
        returned for it.
        """
        with span("session.optimize_many", items=len(workloads)) as sp:
            resolved = [
                self.resolve(workload, batch=batch) for workload in workloads
            ]
            all_specs: List[ConvSpec] = []
            for item in resolved:
                if isinstance(item, ConvSpec):
                    all_specs.append(item)
                else:
                    all_specs.extend(item)
            solved, cached_keys = self._solve_distinct(dedup_specs(all_specs))
        # The fan-out is shared, so each network result carries the wall
        # time of the whole batch (there is no meaningful per-item cost);
        # the span's clock is that wall, so trace and result agree.
        wall_seconds = sp.elapsed

        results: List[Union[OpResult, NetworkResult]] = []
        for original, item in zip(workloads, resolved):
            if isinstance(item, ConvSpec):
                results.append(self._op_result(item, solved, cached_keys))
            else:
                name = original.strip() if isinstance(original, str) else "custom"
                results.append(
                    build_network_result(
                        network=name,
                        machine_name=self.machine.name,
                        strategy=self.strategy_name,
                        specs=item,
                        solved=solved,
                        cached_keys={
                            key
                            for key in (spec_shape_key(spec) for spec in item)
                            if key in cached_keys
                        },
                        wall_seconds=wall_seconds,
                    )
                )
        return results

    def warm_cache(
        self,
        networks: Optional[Sequence[str]] = None,
        *,
        batch: int = 1,
        dry_run: bool = False,
    ) -> WarmCacheReport:
        """Pre-solve workloads into the session's cache.

        ``networks`` defaults to every Table 1 network.  With
        ``dry_run=True`` nothing is solved: the report says how many
        distinct shapes the pass would compute.  Requires a cache
        (``cache=False`` sessions cannot be warmed).
        """
        if self.cache is None:
            raise ValueError("warm_cache requires a session with a cache")
        names = tuple(networks) if networks is not None else network_names()
        with span(
            "session.warm_cache", networks=",".join(names), dry_run=dry_run
        ) as sp:
            specs: List[ConvSpec] = []
            for name in names:
                resolved = self.resolve(name, batch=batch)
                specs.extend(
                    [resolved] if isinstance(resolved, ConvSpec) else resolved
                )
            distinct = dedup_specs(specs)
            if dry_run:
                keys = [
                    self.cache.key_for(spec, self.machine, self.strategy)
                    for spec in distinct.values()
                ]
                hits = self.cache.get_many(keys, record_misses=False)
                already_cached = sum(
                    1 for key in keys if hits.get(key) is not None
                )
                solved = 0
            else:
                _, cached_keys = self._solve_distinct(distinct)
                already_cached = len(cached_keys)
                solved = len(distinct) - already_cached
        return WarmCacheReport(
            networks=names,
            distinct_operators=len(distinct),
            already_cached=already_cached,
            solved=solved,
            dry_run=dry_run,
            wall_seconds=sp.elapsed,
        )

    # ------------------------------------------------------------------
    # design-space exploration
    # ------------------------------------------------------------------
    def explore(
        self,
        space: Any,
        workloads: Union[Workload, Sequence[Workload]] = ("resnet18",),
        *,
        batch: int = 1,
        chunk_size: int = 16,
        max_workers: Optional[int] = None,
        progress: Optional[Union[str, Path]] = None,
        progress_durability: str = "fsync",
        on_progress: Optional[Callable[[int, int], None]] = None,
        max_failures: Optional[int] = None,
        retry: Any = None,
        shard: Optional[str] = None,
    ):
        """Sweep a machine design space with the session's strategy/cache.

        ``space`` is a :class:`repro.dse.DesignSpace`, or a single
        :class:`repro.dse.Axis` / sequence of axes — in the latter case
        the session's machine becomes the base preset the candidates
        derive from.  Every candidate machine is evaluated on every
        workload through the same engine path :meth:`optimize_many`
        uses, sharing this session's result cache (whose keys already
        content-hash the machine), and the sweep is resumable via
        ``progress``.  A raising candidate is isolated as a
        ``status="failed"`` record instead of killing the sweep
        (``max_failures`` sets an abort threshold; ``retry`` — a
        :class:`repro.reliability.RetryPolicy` — retries transient
        failures first).  ``shard="i/n"`` evaluates one deterministic
        partition of the candidates (one shard per host, merged back
        with ``python -m repro dse merge``); ``progress_durability``
        picks the progress store's flush policy.  Returns a
        :class:`repro.dse.explorer.ExplorationResult` — see
        :mod:`repro.dse` for frontier/sensitivity/report helpers.
        """
        from ..dse.explorer import explore as dse_explore
        from ..dse.space import Axis, DesignSpace

        if isinstance(space, Axis):
            space = DesignSpace(self.machine, [space])
        elif not isinstance(space, DesignSpace):
            space = DesignSpace(self.machine, list(space))
        return dse_explore(
            space,
            workloads,
            strategy=self.strategy,
            cache=self.cache if self.cache is not None else False,
            batch=batch,
            chunk_size=chunk_size,
            max_workers=max_workers,
            progress=progress,
            progress_durability=progress_durability,
            on_progress=on_progress,
            max_failures=max_failures,
            retry=retry,
            shard=shard,
        )

    # ------------------------------------------------------------------
    def performance_stats(self) -> Dict[str, Any]:
        """Counters of the process-wide solver infrastructure.

        Mirrors the serving engine's stats probe for embedded sessions:
        the shape-family compile cache (one bounded table shared by every
        optimizer, network sweep and DSE exploration in the process), the
        batched cost-table memo, and the intra-operator solve pool.  All
        three are reuse/fan-out mechanisms — they never change results —
        so these counters are observability, not configuration.

        The ``"reliability"`` entry folds in the process-wide health
        counters of :mod:`repro.reliability` (``pool_rebuilds``,
        ``serial_fallbacks``, ``cache.quarantined``, ...) plus this
        session's disk-cache state (``cache``: quarantined entries,
        write errors, memory-only degradation) — every degradation or
        recovery the infrastructure performed while serving results.
        """
        # Importing the subsystems registers their stat collectors with
        # the unified registry; the payload below is then a pure view
        # over one `metrics.snapshot()`, its shape unchanged since PR 7.
        from ..core import batched, cost_model, solve_pool  # noqa: F401
        from ..obs import metrics

        if self.cache is not None:
            cache_reliability = self.cache.reliability_stats()
        else:
            cache_reliability = ResultCache.empty_reliability_stats()
        snap = metrics.snapshot()
        return {
            "compile_cache": snap["compile_cache"],
            "batched_table_cache": snap["batched_table_cache"],
            "solve_pool": snap["solve_pool"],
            "reliability": {
                **snap["reliability"],
                "cache": cache_reliability,
            },
        }

    def export_trace(
        self, path: Union[None, str, Path] = None
    ) -> Optional[Path]:
        """Write the buffered trace as JSON-lines; returns the path.

        ``path`` defaults to the one given at construction
        (``Session(trace="trace.jsonl")``).  Returns ``None`` (writing
        nothing) when no path is known — a ``trace=True`` session that
        only wanted in-memory spans.
        """
        target = Path(path).expanduser() if path is not None else self.trace_path
        if target is None:
            return None
        obs_trace.export_jsonl(target)
        return target

    # ------------------------------------------------------------------
    # async path (serving engine)
    # ------------------------------------------------------------------
    async def optimize_async(
        self,
        workload: Workload,
        *,
        batch: int = 1,
        priority: int = 10,
        deadline_s: Optional[float] = None,
        on_event: Optional[Callable[[Any], None]] = None,
    ):
        """Optimize through the embedded async serving engine.

        The first call lazily starts an
        :class:`~repro.serving.server.OptimizationServer` over the
        session's machine/strategy/cache on the running event loop;
        concurrent calls share its queue, worker pool and single-flight
        coalescing.  ``on_event`` observes the streaming per-operator
        progress events; the return value is the wire-level
        :class:`~repro.serving.protocol.OptimizeResponse`.
        """
        client = await self._ensure_client()
        resolved = self.resolve(workload, batch=batch)
        if isinstance(resolved, ConvSpec):
            network: Union[str, Tuple[ConvSpec, ...]] = (resolved,)
        elif isinstance(workload, str) and isinstance(resolved, list):
            network = workload.strip()  # plain network name: ship by name
        else:
            network = tuple(resolved)
        return await client.optimize(
            network,
            batch=batch,
            priority=priority,
            deadline_s=deadline_s,
            on_event=on_event,
        )

    async def _ensure_client(self):
        from ..serving.client import ServingClient
        from ..serving.server import OptimizationServer

        loop = asyncio.get_running_loop()
        if self._server is None or self._server_loop is not loop:
            # A server left over from an earlier (now finished) event
            # loop cannot be awaited anymore — tear it down best-effort.
            self._discard_server()
            server = OptimizationServer(
                self.machine,
                self.strategy,
                cache=self.cache if self.cache is not None else ResultCache(),
                config=self._server_config,
            )
            await server.start()
            self._server = server
            self._client = ServingClient(server)
            self._server_loop = loop
        return self._client

    def _discard_server(self) -> None:
        """Drop a server whose event loop is gone (thread pool included)."""
        server, self._server = self._server, None
        self._client = None
        self._server_loop = None
        if server is None:
            return
        pool = getattr(server, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        server._running = False

    @property
    def server(self) -> Optional[Any]:
        """The embedded serving engine, if :meth:`optimize_async` started one."""
        return self._server

    async def aclose(self) -> None:
        """Stop the embedded serving engine (no-op if never started)."""
        if self._server is None:
            return
        if self._server_loop is asyncio.get_running_loop():
            server, self._server = self._server, None
            self._client = None
            self._server_loop = None
            await server.stop()
        else:
            # Closing from a different loop than the server ran on (the
            # original asyncio.run has returned): nothing awaitable left.
            self._discard_server()

    async def __aenter__(self) -> "Session":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _optimize_op(self, spec: ConvSpec) -> OpResult:
        shape_key = spec_shape_key(spec)
        if self.cache is None:
            result = self.strategy.search(spec, self.machine)
            return OpResult(
                spec=spec, result=result, cached=False, shape_key=shape_key
            )
        key = self.cache.key_for(spec, self.machine, self.strategy)
        cached = self.cache.get(key)
        if cached is not None:
            result, was_cached = cached, True
        else:
            result = self.cache.get_or_compute(
                key, lambda: self.strategy.search(spec, self.machine)
            )
            was_cached = False
        if result.spec_name != spec.name:
            result = result.with_spec_name(spec.name)
        return OpResult(
            spec=spec, result=result, cached=was_cached, shape_key=shape_key
        )

    def _solve_distinct(
        self, distinct: Mapping[str, ConvSpec]
    ) -> Tuple[Dict[str, StrategyResult], set]:
        """Solve every distinct shape (cache first), like the engine does."""
        solved: Dict[str, StrategyResult] = {}
        cached_keys: set = set()
        pending: List[Tuple[str, ConvSpec]] = []
        keys: Dict[str, str] = {}
        if self.cache is not None:
            keys = {
                shape_key: self.cache.key_for(spec, self.machine, self.strategy)
                for shape_key, spec in distinct.items()
            }
            hits = self.cache.get_many(list(keys.values()))
            for shape_key, spec in distinct.items():
                hit = hits.get(keys[shape_key])
                if hit is not None:
                    solved[shape_key] = hit
                    cached_keys.add(shape_key)
                else:
                    pending.append((shape_key, spec))
        else:
            pending = list(distinct.items())
        for (shape_key, _), result in zip(
            pending, self._optimizer.solve_specs([s for _, s in pending])
        ):
            solved[shape_key] = result
            if self.cache is not None:
                self.cache.put(keys[shape_key], result)
        return solved, cached_keys

    def _op_result(
        self,
        spec: ConvSpec,
        solved: Mapping[str, StrategyResult],
        cached_keys: set,
    ) -> OpResult:
        shape_key = spec_shape_key(spec)
        result = solved[shape_key]
        if result.spec_name != spec.name:
            result = result.with_spec_name(spec.name)
        return OpResult(
            spec=spec,
            result=result,
            cached=shape_key in cached_keys,
            shape_key=shape_key,
        )


def optimize(
    workload: Workload,
    *,
    machine: Union[str, MachineSpec] = "i7-9700k",
    strategy: Union[str, SearchStrategy] = "mopt",
    strategy_options: Optional[Mapping[str, Any]] = None,
    cache: Union[None, bool, str, Path, ResultCache] = None,
    batch: int = 1,
    executor: str = "thread",
    max_workers: Optional[int] = None,
) -> Union[OpResult, NetworkResult]:
    """One-shot convenience: build a :class:`Session` and optimize once."""
    session = Session(
        machine,
        strategy,
        strategy_options=strategy_options,
        cache=cache,
        executor=executor,
        max_workers=max_workers,
    )
    return session.optimize(workload, batch=batch)
