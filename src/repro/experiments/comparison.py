"""Experiments ``fig7`` and ``fig8``: MOpt vs. oneDNN-like vs. AutoTVM-like.

Section 10 of the paper compares, for every Table 1 operator and on two
machines (8 threads on the i7-9700K, 16 threads on the i9-10980XE):

* **MOpt-1** — the single configuration with minimum modeled cost,
* **MOpt-5** — the best (by measurement) of the top five modeled
  configurations, representing MOpt plus a tiny amount of empirical tuning,
* **oneDNN** — the vendor library,
* **TVM** — AutoTVM with the recommended template and 1000 trials,

reporting mean GFLOPS over 50 runs with 95% confidence intervals,
normalized to TVM, and geometric-mean speedups per network.

In the reproduction all four systems are measured on the same *virtual
machine* (:func:`repro.sim.perfmodel.virtual_measurement`): analytical
per-level volumes, configuration-dependent microkernel efficiency, a
deterministic conflict-miss penalty that the analytical model cannot see,
and small run-to-run noise.  MOpt and AutoTVM search with their own
machinery; oneDNN dispatches heuristically; the paper's qualitative result
— MOpt matches or beats the library and clearly beats the constrained
auto-tuner — should and does survive the substitution.

All systems run through :class:`repro.api.Session` (one per strategy,
resolved by registry name), so the comparison shares one code path with
network-level optimization and serving instead of wiring each system up
by hand.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..analysis.reporting import format_speedup_summary, format_table
from ..analysis.stats import MeasurementSummary, geometric_mean, summarize_runs
from ..api.session import Session
from ..core.optimizer import OptimizerSettings, fast_settings
from ..machine.presets import cascade_lake_i9_10980xe, coffee_lake_i7_9700k
from ..machine.spec import MachineSpec
from ..workloads.benchmarks import benchmark_by_name, network_benchmarks, network_names

#: Systems reported by the comparison, in presentation order.
SYSTEMS = ("MOpt-1", "MOpt-5", "oneDNN", "TVM")

#: Default operator subset for the quick comparison (2 per network); the full
#: paper figure uses every Table 1 operator (pass ``operators="all"``).
DEFAULT_OPERATORS = ("Y5", "Y12", "R2", "R9", "M2", "M7")


@dataclass(frozen=True)
class ComparisonSettings:
    """Parameters of the Figure 7/8 comparison."""

    threads: int = 8
    tvm_trials: int = 200
    runs: int = 50
    noise: float = 0.02
    seed: int = 0
    optimizer_settings: Optional[OptimizerSettings] = None


@dataclass(frozen=True)
class OperatorComparison:
    """All systems' measured performance on one operator."""

    operator: str
    network: str
    gflops: Dict[str, float]
    summaries: Dict[str, MeasurementSummary]
    relative_to_tvm: Dict[str, float]
    mopt_search_seconds: float
    tvm_search_seconds: float


@dataclass(frozen=True)
class ComparisonResult:
    """Full Figure 7/8-style result on one machine."""

    machine_name: str
    threads: int
    per_operator: Dict[str, OperatorComparison]
    geomean_speedup_vs_tvm: Dict[str, float]
    geomean_speedup_vs_onednn: Dict[str, float]
    text: str

    def gflops_table(self) -> Dict[str, Dict[str, float]]:
        """operator -> system -> GFLOPS (used by benchmarks and tests)."""
        return {name: dict(result.gflops) for name, result in self.per_operator.items()}


def _network_of(operator: str) -> str:
    prefix = operator[0].upper()
    return {"Y": "yolo9000", "R": "resnet18", "M": "mobilenet"}[prefix]


def _sample_runs(nominal: float, runs: int, noise: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return nominal * np.clip(rng.normal(1.0, max(noise, 1e-6), size=max(1, runs)), 0.7, 1.3)


def compare_operator(
    operator: str,
    machine: MachineSpec,
    settings: Optional[ComparisonSettings] = None,
) -> OperatorComparison:
    """Run all four systems on one operator and summarize their performance."""
    settings = settings or ComparisonSettings()
    spec = benchmark_by_name(operator)
    threads = settings.threads
    seed = settings.seed

    # --- MOpt: analytical design-space exploration (Algorithm 1), top-5
    # candidates measured on the virtual machine (Figure 7/8 protocol).
    optimizer_settings = settings.optimizer_settings or fast_settings(
        parallel=True, threads=threads
    )
    mopt = Session(
        machine, "mopt",
        strategy_options={
            "settings": optimizer_settings, "threads": threads,
            "seed": seed, "measure": True,
        },
        cache=False,
    ).optimize(spec).result

    # --- oneDNN-like vendor library.
    onednn = Session(
        machine, "onednn",
        strategy_options={"threads": threads, "seed": seed},
        cache=False,
    ).optimize(spec).result

    # --- AutoTVM-like tuner.
    tvm = Session(
        machine, "autotvm",
        strategy_options={
            "threads": threads, "trials": settings.tvm_trials, "seed": seed,
        },
        cache=False,
    ).optimize(spec).result

    gflops = {
        "MOpt-1": float(mopt.extras["mopt1_gflops"]),
        "MOpt-5": float(mopt.extras["mopt5_gflops"]),
        "oneDNN": onednn.gflops,
        "TVM": tvm.gflops,
    }
    summaries = {
        system: summarize_runs(
            _sample_runs(
                value,
                settings.runs,
                settings.noise,
                # zlib.crc32, not hash(): per-system seeds must not change
                # with the interpreter's per-process hash salt.
                seed + zlib.crc32(system.encode("utf-8")) % 1000,
            )
        )
        for system, value in gflops.items()
    }
    relative = {system: value / gflops["TVM"] for system, value in gflops.items()}
    return OperatorComparison(
        operator=operator,
        network=_network_of(operator),
        gflops=gflops,
        summaries=summaries,
        relative_to_tvm=relative,
        mopt_search_seconds=mopt.search_seconds,
        tvm_search_seconds=tvm.search_seconds,
    )


def run_comparison(
    machine: MachineSpec,
    *,
    operators: Sequence[str] | str | None = None,
    settings: Optional[ComparisonSettings] = None,
) -> ComparisonResult:
    """Regenerate Figure 7 (i7-9700K) or Figure 8 (i9-10980XE).

    ``operators`` may be an explicit list of Table 1 operator names, the
    string ``"all"`` for the full 32-operator sweep, or ``None`` for a quick
    representative subset.
    """
    settings = settings or ComparisonSettings()
    if operators is None:
        names: Sequence[str] = DEFAULT_OPERATORS
    elif operators == "all":
        names = [spec.name for net in network_names() for spec in network_benchmarks(net)]
    else:
        names = list(operators)

    per_operator = {
        name: compare_operator(name, machine, settings) for name in names
    }

    geomean_tvm: Dict[str, float] = {}
    geomean_onednn: Dict[str, float] = {}
    for network in network_names():
        rows = [r for r in per_operator.values() if r.network == network]
        if not rows:
            continue
        geomean_tvm[network] = geometric_mean(
            [r.gflops["MOpt-5"] / r.gflops["TVM"] for r in rows]
        )
        geomean_onednn[network] = geometric_mean(
            [r.gflops["MOpt-5"] / r.gflops["oneDNN"] for r in rows]
        )

    headers = ["operator", "network"] + [f"{s} GFLOPS" for s in SYSTEMS] + [
        "MOpt-1/TVM",
        "MOpt-5/oneDNN",
    ]
    rows = []
    for name, result in per_operator.items():
        rows.append(
            [
                name,
                result.network,
                *[result.gflops[s] for s in SYSTEMS],
                result.relative_to_tvm["MOpt-1"],
                result.gflops["MOpt-5"] / result.gflops["oneDNN"],
            ]
        )
    text = format_table(headers, rows, float_format="{:.2f}")
    text += "\n\n" + format_speedup_summary("geomean MOpt-5 / TVM", geomean_tvm)
    text += "\n" + format_speedup_summary("geomean MOpt-5 / oneDNN", geomean_onednn)
    return ComparisonResult(
        machine_name=machine.name,
        threads=settings.threads,
        per_operator=per_operator,
        geomean_speedup_vs_tvm=geomean_tvm,
        geomean_speedup_vs_onednn=geomean_onednn,
        text=text,
    )


def run_figure7(
    *,
    operators: Sequence[str] | str | None = None,
    settings: Optional[ComparisonSettings] = None,
) -> ComparisonResult:
    """Figure 7: comparison on the i7-9700K with 8 threads."""
    settings = settings or ComparisonSettings(threads=8)
    return run_comparison(coffee_lake_i7_9700k(), operators=operators, settings=settings)


def run_figure8(
    *,
    operators: Sequence[str] | str | None = None,
    settings: Optional[ComparisonSettings] = None,
) -> ComparisonResult:
    """Figure 8: comparison on the i9-10980XE with 16 threads."""
    settings = settings or ComparisonSettings(threads=16)
    return run_comparison(
        cascade_lake_i9_10980xe(), operators=operators, settings=settings
    )


def main() -> None:
    """Run the quick versions of Figures 7 and 8 and print their tables."""
    for label, runner in (("Figure 7 (i7-9700K)", run_figure7), ("Figure 8 (i9-10980XE)", run_figure8)):
        result = runner()
        print(label)
        print(result.text)
        print()


if __name__ == "__main__":
    main()
