"""Experiment drivers — one per table/figure of the paper's evaluation.

==============  =====================================================
experiment      regenerates
==============  =====================================================
``table1``      Table 1 — benchmark operator configurations
``table2``      Table 2 — strengths/limitations of oneDNN/TVM/MOpt
``fig5``        Figure 5 — model top-1/2/5 loss-of-performance
``fig6``        Figure 6 — predicted rank vs. measured perf/counters
``fig7``        Figure 7 — comparison on the i7-9700K (8 threads)
``fig8``        Figure 8 — comparison on the i9-10980XE (16 threads)
``searchtime``  Section 12 — MOpt vs. auto-tuner search time
``pruning``     Section 4 — 5040 -> 8 permutation pruning check
``serving``     concurrent clients against the async serving front-end
==============  =====================================================
"""

from .comparison import (
    ComparisonResult,
    ComparisonSettings,
    OperatorComparison,
    compare_operator,
    run_comparison,
    run_figure7,
    run_figure8,
)
from .model_validation import (
    Figure5Result,
    Figure6Result,
    OperatorValidation,
    ValidationSettings,
    run_figure5,
    run_figure6,
    validate_operator,
)
from .pruning_check import PruningCheckResult, run_pruning_check
from .search_time import SearchTimeRecord, SearchTimeResult, run_search_time
from .serving_demo import (
    RoundFigures,
    ServingDemoResult,
    run_serving_demo,
    run_serving_demo_sync,
)
from .table1 import Table1Result, run_table1
from .table2 import Table2Result, run_table2

__all__ = [
    "ComparisonResult",
    "ComparisonSettings",
    "Figure5Result",
    "Figure6Result",
    "OperatorComparison",
    "OperatorValidation",
    "PruningCheckResult",
    "RoundFigures",
    "SearchTimeRecord",
    "SearchTimeResult",
    "ServingDemoResult",
    "Table1Result",
    "Table2Result",
    "ValidationSettings",
    "compare_operator",
    "run_comparison",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_pruning_check",
    "run_search_time",
    "run_serving_demo",
    "run_serving_demo_sync",
    "run_table1",
    "run_table2",
    "validate_operator",
]
