"""Experiment ``serving``: concurrent clients against the async front-end.

The serving PR's acceptance scenario: **N concurrent clients** (default
8) request overlapping Table 1 networks from one
:class:`~repro.serving.server.OptimizationServer` sharing one result
cache.  Because the clients overlap (several ask for the same network,
and distinct networks still share operator shapes), naive serving would
re-solve the same operators over and over; the single-flight coalescing
layer must instead solve **every distinct operator exactly once** — the
server's solve-count probe verifies it — while every client still
receives its full per-layer result stream.

Two rounds are driven:

* a **cold round** — the cache starts empty; latency is dominated by the
  analytical solves and the coalescing is what bounds total work;
* a **warm round** — the same requests again; every operator is a cache
  hit and requests complete in milliseconds (the Table 2 "cheap enough
  to run on demand" claim, now as a service-latency statement).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..analysis.reporting import format_table
from ..core.tensor_spec import ConvSpec
from ..engine.cache import ResultCache
from ..machine.presets import coffee_lake_i7_9700k
from ..machine.spec import MachineSpec
from ..serving.client import ServingClient
from ..serving.server import OptimizationServer, ServerConfig
from ..workloads.benchmarks import network_benchmarks


def _percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty sample list."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


@dataclass(frozen=True)
class RoundFigures:
    """Latency/throughput figures of one round of concurrent requests."""

    requests: int
    wall_s: float
    latencies_s: Tuple[float, ...]

    @property
    def requests_per_s(self) -> float:
        return self.requests / max(self.wall_s, 1e-12)

    @property
    def p50_s(self) -> float:
        return _percentile(self.latencies_s, 0.50)

    @property
    def p95_s(self) -> float:
        return _percentile(self.latencies_s, 0.95)

    @property
    def max_s(self) -> float:
        return max(self.latencies_s)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "wall_s": self.wall_s,
            "requests_per_s": self.requests_per_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "max_s": self.max_s,
        }


@dataclass(frozen=True)
class ServingDemoResult:
    """Outcome of the concurrent-client serving demo."""

    clients: int
    networks: Tuple[str, ...]
    distinct_operators: int
    total_operators_served: int
    solves: int
    duplicate_solves: int
    coalesced_operators: int
    cold: RoundFigures
    warm: RoundFigures
    text: str

    @property
    def every_duplicate_solved_once(self) -> bool:
        """The headline property: no distinct operator solved twice."""
        return self.duplicate_solves == 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "clients": self.clients,
            "networks": list(self.networks),
            "distinct_operators": self.distinct_operators,
            "total_operators_served": self.total_operators_served,
            "solves": self.solves,
            "duplicate_solves": self.duplicate_solves,
            "coalesced_operators": self.coalesced_operators,
            "cold": self.cold.to_dict(),
            "warm": self.warm.to_dict(),
        }


async def _drive_round(
    client: ServingClient,
    requests: Sequence[Union[str, Tuple[ConvSpec, ...]]],
    *,
    priority: int = 10,
) -> RoundFigures:
    """Fire all requests concurrently; collect client-observed latencies."""
    latencies: List[float] = [0.0] * len(requests)

    async def one(index: int, network: Union[str, Tuple[ConvSpec, ...]]) -> None:
        begin = time.perf_counter()
        await client.optimize(network, priority=priority)
        latencies[index] = time.perf_counter() - begin

    start = time.perf_counter()
    await asyncio.gather(
        *(one(index, network) for index, network in enumerate(requests))
    )
    return RoundFigures(
        requests=len(requests),
        wall_s=time.perf_counter() - start,
        latencies_s=tuple(latencies),
    )


async def run_serving_demo(
    machine: Optional[MachineSpec] = None,
    *,
    clients: int = 8,
    networks: Sequence[str] = ("resnet18", "mobilenet"),
    strategy: str = "mopt",
    strategy_options: Optional[Mapping[str, Any]] = None,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[str] = None,
    layers_per_network: Optional[int] = None,
    queue_depth: int = 64,
    workers: int = 4,
    solve_threads: int = 4,
) -> ServingDemoResult:
    """Drive ``clients`` concurrent requests over overlapping networks.

    Clients cycle through ``networks`` (so with 8 clients and 2 networks
    every network is requested 4 times — heavy overlap by construction).
    ``layers_per_network`` truncates each network to its head for quick
    runs.  Returns figures for the cold and warm rounds plus the
    solve-count verification.
    """
    machine = machine or coffee_lake_i7_9700k()
    if strategy_options is None:
        strategy_options = {"measure": False}
    if cache is None:
        cache = ResultCache(cache_dir) if cache_dir else ResultCache()

    # Resolve the request payloads up front: full networks go by name,
    # truncated ones as explicit operator tuples.
    payloads: List[Union[str, Tuple[ConvSpec, ...]]] = []
    for index in range(clients):
        name = networks[index % len(networks)]
        if layers_per_network is None:
            payloads.append(name)
        else:
            payloads.append(tuple(network_benchmarks(name)[:layers_per_network]))

    server = OptimizationServer(
        machine,
        strategy,
        strategy_options=strategy_options,
        cache=cache,
        config=ServerConfig(
            max_queue_depth=queue_depth,
            workers=workers,
            solve_threads=solve_threads,
        ),
    )
    async with server:
        client = ServingClient(server)
        cold = await _drive_round(client, payloads)
        warm = await _drive_round(client, payloads)

    # Distinct keys that actually reached the solver (shapes served from a
    # pre-warmed disk cache never enter solve_counts).
    distinct = len(server.solve_counts)
    stats = server.stats
    headers = ("round", "requests", "wall s", "req/s", "p50 ms", "p95 ms", "max ms")
    rows = [
        (
            "cold",
            str(cold.requests),
            f"{cold.wall_s:.2f}",
            f"{cold.requests_per_s:.2f}",
            f"{cold.p50_s * 1e3:.1f}",
            f"{cold.p95_s * 1e3:.1f}",
            f"{cold.max_s * 1e3:.1f}",
        ),
        (
            "warm",
            str(warm.requests),
            f"{warm.wall_s:.2f}",
            f"{warm.requests_per_s:.2f}",
            f"{warm.p50_s * 1e3:.1f}",
            f"{warm.p95_s * 1e3:.1f}",
            f"{warm.max_s * 1e3:.1f}",
        ),
    ]
    duplicate_solves = server.duplicate_solves()
    text = format_table(headers, rows) + (
        f"\n{clients} clients over {list(networks)}: "
        f"{stats.operators_served} operators served, "
        f"{stats.solves} solved, {stats.operators_coalesced} coalesced, "
        f"{duplicate_solves} duplicate solves "
        f"({'OK: every duplicate operator solved exactly once' if duplicate_solves == 0 else 'VIOLATION'})"
    )
    return ServingDemoResult(
        clients=clients,
        networks=tuple(networks),
        distinct_operators=distinct,
        total_operators_served=stats.operators_served,
        solves=stats.solves,
        duplicate_solves=duplicate_solves,
        coalesced_operators=stats.operators_coalesced,
        cold=cold,
        warm=warm,
        text=text,
    )


def run_serving_demo_sync(**kwargs: Any) -> ServingDemoResult:
    """Synchronous wrapper (benchmark harness and scripts)."""
    return asyncio.run(run_serving_demo(**kwargs))
