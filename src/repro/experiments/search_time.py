"""Experiment ``searchtime``: optimizer search time, MOpt vs. auto-tuning.

Section 12 of the paper reports that TVM's auto-tuning time grows with the
operator's arithmetic cost — 1 minute for the small first Yolo-9000 stage
(Y0) versus 109 minutes for the large last stage (Y23) at 1000 trials —
while MOpt's model-driven search is essentially size-independent: 9 and 23
seconds respectively.

This experiment reproduces the comparison: it times MOpt's Algorithm 1 on
both operators and times the AutoTVM-like tuner for a reduced trial budget,
then extrapolates the tuner's cost to the paper's 1000 trials (per-trial
measurement cost on a real machine is proportional to the operator's
execution time, which the virtual machine also models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.reporting import format_table
from ..api.session import Session
from ..core.optimizer import OptimizerSettings, fast_settings
from ..machine.presets import coffee_lake_i7_9700k
from ..machine.spec import MachineSpec
from ..sim.perfmodel import virtual_measurement
from ..workloads.benchmarks import benchmark_by_name

#: Operators compared in the paper's discussion: the first (small) and last
#: (very large) conv2d stages of the Yolo-9000 pipeline.
DEFAULT_OPERATORS = ("Y0", "Y23")


@dataclass(frozen=True)
class SearchTimeRecord:
    """Search cost of both systems for one operator."""

    operator: str
    gflop: float
    mopt_seconds: float
    tuner_seconds_measured: float
    tuner_trials_measured: int
    tuner_seconds_extrapolated_1000: float

    @property
    def tuner_to_mopt_ratio(self) -> float:
        """How many times longer the auto-tuner's (extrapolated) search takes."""
        return self.tuner_seconds_extrapolated_1000 / max(self.mopt_seconds, 1e-9)


@dataclass(frozen=True)
class SearchTimeResult:
    """Full search-time comparison."""

    records: Dict[str, SearchTimeRecord]
    text: str


def measure_search_time(
    operator: str,
    machine: MachineSpec,
    *,
    threads: int = 8,
    tuner_trials: int = 64,
    optimizer_settings: Optional[OptimizerSettings] = None,
    seed: int = 0,
) -> SearchTimeRecord:
    """Time MOpt and the auto-tuner on one operator."""
    spec = benchmark_by_name(operator)

    settings = optimizer_settings or fast_settings(parallel=True, threads=threads)
    mopt = Session(
        machine, "mopt",
        strategy_options={
            "settings": settings, "threads": threads, "measure": False,
        },
        cache=False,
    ).optimize(spec).result

    tuning = Session(
        machine, "autotvm",
        strategy_options={
            "threads": threads, "trials": tuner_trials, "seed": seed,
        },
        cache=False,
    ).optimize(spec).result
    num_trials = int(tuning.extras["num_trials"])
    # On a real machine every trial executes the candidate, so tuning time is
    # dominated by `trials x execution_time`; model that part explicitly and
    # add the measured model-fitting/search overhead.
    best_time = virtual_measurement(
        spec, tuning.best_config, machine, threads=threads, seed=seed
    ).time_seconds
    per_trial_execution = best_time * 40  # ~40 timed repetitions per trial (TVM default-ish)
    extrapolated = 1000 * per_trial_execution + (
        tuning.search_seconds / max(num_trials, 1)
    ) * 1000
    return SearchTimeRecord(
        operator=operator,
        gflop=spec.flops / 1e9,
        mopt_seconds=mopt.search_seconds,
        tuner_seconds_measured=tuning.search_seconds,
        tuner_trials_measured=num_trials,
        tuner_seconds_extrapolated_1000=extrapolated,
    )


def run_search_time(
    operators: Sequence[str] = DEFAULT_OPERATORS,
    *,
    machine: Optional[MachineSpec] = None,
    threads: int = 8,
    tuner_trials: int = 64,
    seed: int = 0,
) -> SearchTimeResult:
    """Regenerate the Section 12 search-time comparison."""
    machine = machine or coffee_lake_i7_9700k()
    records = {
        operator: measure_search_time(
            operator, machine, threads=threads, tuner_trials=tuner_trials, seed=seed
        )
        for operator in operators
    }
    rows = [
        [
            record.operator,
            record.gflop,
            record.mopt_seconds,
            record.tuner_seconds_measured,
            record.tuner_trials_measured,
            record.tuner_seconds_extrapolated_1000 / 60.0,
            record.tuner_to_mopt_ratio,
        ]
        for record in records.values()
    ]
    text = format_table(
        [
            "operator",
            "GFLOP",
            "MOpt search (s)",
            "tuner search (s, measured)",
            "trials",
            "tuner @1000 trials (min)",
            "tuner/MOpt",
        ],
        rows,
        float_format="{:.2f}",
    )
    return SearchTimeResult(records=records, text=text)


def main() -> None:
    """Run and print the search-time comparison (module entry point)."""
    result = run_search_time()
    print("Search-time comparison (Section 12): MOpt vs. auto-tuning")
    print(result.text)


if __name__ == "__main__":
    main()
