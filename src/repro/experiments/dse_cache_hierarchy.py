"""Experiment ``dse_cache_hierarchy``: what cache hierarchy should you buy?

The paper's second promise — *design space exploration* — inverted into
the hardware question: with the workload fixed (Table 1 networks), which
cache hierarchy gives the best predicted network time per byte of SRAM
spent?  Because every evaluation is analytical, this sweeps >100
hypothetical variants of the i7-9700K — every combination of

* L1 capacity:  8, 16, 32, 64 KiB,
* L2 capacity: 32 KiB ... 1 MiB (powers of two),
* L3 capacity:  1 ... 16 MiB (powers of two),

minus the combinations pruned by the hierarchy invariants (an L1 larger
than its L2) — over ResNet-18 and MobileNet through the cached engine
path, then reports the Pareto frontier of predicted time vs. total SRAM
bytes and the per-axis sensitivity ("L2 past X buys <2%").

The sweep is resumable and warm-restartable: every completed candidate
is recorded in a JSON-lines progress store and every solved operator in
the persistent result cache, so re-running the same sweep (or resuming
an interrupted one) is orders of magnitude faster than the cold run —
the experiment measures and reports both restart modes.

Run with::

    PYTHONPATH=src python -m repro.experiments.dse_cache_hierarchy \
        [--quick] [--out-dir DIR] [--strategy onednn] [--resume]
"""

from __future__ import annotations

import argparse
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..dse import (
    DesignSpace,
    ExplorationResult,
    axis_log2,
    dominates,
    sensitivity_summary,
    write_csv,
    write_json,
    write_markdown,
)

KiB = 1024
MiB = 1024 * KiB

#: The two Table 1 networks the candidates are rated on.
DEFAULT_NETWORKS: Tuple[str, ...] = ("resnet18", "mobilenet")

#: Pareto objectives: predicted network time vs. cache silicon spent.
OBJECTIVES: Tuple[str, str] = ("total_time_seconds", "total_sram_bytes")


def cache_hierarchy_space(*, quick: bool = False) -> DesignSpace:
    """The swept cache-capacity space over the i7-9700K base preset.

    The full space has 120 grid points of which 115 are valid (the
    L1 = 64 KiB x L2 = 32 KiB corner violates capacity monotonicity and
    is pruned); ``quick`` shrinks it to 12 candidates for smoke runs.
    """
    if quick:
        axes = [
            axis_log2("caches.L1.capacity_bytes", 16 * KiB, 32 * KiB),
            axis_log2("caches.L2.capacity_bytes", 128 * KiB, 512 * KiB),
            axis_log2("caches.L3.capacity_bytes", 4 * MiB, 8 * MiB),
        ]
    else:
        axes = [
            axis_log2("caches.L1.capacity_bytes", 8 * KiB, 64 * KiB),
            axis_log2("caches.L2.capacity_bytes", 32 * KiB, 1 * MiB),
            axis_log2("caches.L3.capacity_bytes", 1 * MiB, 16 * MiB),
        ]
    return DesignSpace("i7-9700k", axes, name="cache-hierarchy")


@dataclass(frozen=True)
class DseCacheHierarchyResult:
    """Cold sweep, warm-restart figures and report paths."""

    result: ExplorationResult
    cold_seconds: float
    restart_seconds: float
    cache_warm_seconds: float
    restart_speedup: float
    cache_warm_speedup: float
    report_paths: Tuple[Path, ...]
    text: str


def _verify_frontier(result: ExplorationResult) -> List:
    """Frontier members, defensively re-checked for non-domination."""
    frontier = result.frontier(OBJECTIVES)
    for member in frontier:
        for other in result.outcomes:
            if dominates(other, member, OBJECTIVES):
                raise AssertionError(
                    f"frontier member {member.machine_name} is dominated "
                    f"by {other.machine_name}"
                )
    return frontier


def run_dse_cache_hierarchy(
    *,
    out_dir: Path = Path("dse-results"),
    networks: Sequence[str] = DEFAULT_NETWORKS,
    strategy: str = "onednn",
    strategy_options: Optional[Dict[str, Any]] = None,
    quick: bool = False,
    resume: bool = False,
    chunk_size: int = 16,
) -> DseCacheHierarchyResult:
    """Sweep the cache-hierarchy space cold, then re-run it warm twice.

    The three timed passes:

    1. **cold** — nothing cached; every (machine, operator) pair is
       solved through the engine path and recorded,
    2. **restart** — same sweep again: every candidate is loaded from
       the progress store (the "interrupted at machine 400/1000" path,
       taken to completion),
    3. **cache-tier warm** — progress store cleared but the result
       cache kept: every candidate is re-aggregated from cached solves.

    ``resume=True`` keeps existing progress/cache state (continuing an
    interrupted sweep) instead of starting cold.
    """
    out_dir = Path(out_dir)
    progress = out_dir / "cache_hierarchy_progress.jsonl"
    cache_dir = out_dir / "result-cache"
    if not resume:
        if progress.exists():
            progress.unlink()
        if cache_dir.exists():
            shutil.rmtree(cache_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    space = cache_hierarchy_space(quick=quick)
    options = dict(strategy_options or {})
    if strategy == "onednn" and "threads" not in options:
        options["threads"] = 8
    sweep = dict(
        workloads=list(networks),
        strategy=strategy,
        strategy_options=options,
        cache=cache_dir,
        chunk_size=chunk_size,
    )

    from ..dse import explore

    lines: List[str] = [space.describe(), ""]
    start = time.perf_counter()
    result = explore(space, progress=progress, **sweep)
    cold_seconds = time.perf_counter() - start
    lines.append(f"cold sweep:      {result.summary()}")

    start = time.perf_counter()
    restarted = explore(space, progress=progress, **sweep)
    restart_seconds = time.perf_counter() - start
    if restarted.evaluated != 0 or restarted.resumed != result.num_candidates:
        raise AssertionError(
            f"warm restart recomputed {restarted.evaluated} candidates "
            f"(expected 0) and resumed {restarted.resumed}"
        )
    lines.append(f"warm restart:    {restarted.summary()}")

    progress.unlink()
    start = time.perf_counter()
    cache_warm = explore(space, progress=progress, **sweep)
    cache_warm_seconds = time.perf_counter() - start
    lines.append(f"cache-tier warm: {cache_warm.summary()}")

    restart_speedup = cold_seconds / max(restart_seconds, 1e-9)
    cache_warm_speedup = cold_seconds / max(cache_warm_seconds, 1e-9)
    lines.append(
        f"cold {cold_seconds:.2f} s -> restart {restart_seconds * 1e3:.0f} ms "
        f"({restart_speedup:.0f}x), cache-tier warm "
        f"{cache_warm_seconds * 1e3:.0f} ms ({cache_warm_speedup:.0f}x)"
    )

    frontier = _verify_frontier(result)
    lines += ["", f"Pareto frontier ({OBJECTIVES[0]} vs. {OBJECTIVES[1]}):"]
    for outcome in sorted(frontier, key=lambda o: o.total_time_seconds):
        lines.append("  " + outcome.summary())
    lines.append("")
    for line in sensitivity_summary(
        result.outcomes, [axis.path for axis in space.axes]
    ):
        lines.append("  " + line)

    paths = (
        write_json(result, out_dir / "cache_hierarchy.json", objectives=OBJECTIVES),
        write_csv(result, out_dir / "cache_hierarchy.csv", objectives=OBJECTIVES),
        write_markdown(result, out_dir / "cache_hierarchy.md", objectives=OBJECTIVES),
    )
    lines += ["", "reports: " + ", ".join(str(p) for p in paths)]

    return DseCacheHierarchyResult(
        result=result,
        cold_seconds=cold_seconds,
        restart_seconds=restart_seconds,
        cache_warm_seconds=cache_warm_seconds,
        restart_speedup=restart_speedup,
        cache_warm_speedup=cache_warm_speedup,
        report_paths=paths,
        text="\n".join(lines),
    )


def main() -> None:
    """Run and print the cache-hierarchy exploration (module entry point)."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default="dse-results", type=Path)
    parser.add_argument("--strategy", default="onednn")
    parser.add_argument(
        "--quick", action="store_true", help="12-candidate smoke configuration"
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="keep existing progress/cache state instead of starting cold",
    )
    args = parser.parse_args()
    outcome = run_dse_cache_hierarchy(
        out_dir=args.out_dir,
        strategy=args.strategy,
        quick=args.quick,
        resume=args.resume,
    )
    print("Cache-hierarchy design-space exploration (paper Section 1/12 claim)")
    print(outcome.text)


if __name__ == "__main__":
    main()
