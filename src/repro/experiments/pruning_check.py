"""Experiment ``pruning``: verify the 5040 → 8 permutation-space pruning.

Section 4's pruning argument is analytical; this supporting experiment
checks it computationally.  For a set of operators and cache capacities,
the best tile sizes are solved for (a) the eight pruned class
representatives and (b) a large sample — or, in full mode, all — of the
5040 permutations, and the resulting optimal data volumes are compared.
The pruned set must never be beaten (beyond solver noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.reporting import format_table
from ..baselines.exhaustive import PruningVerification, verify_pruning
from ..core.solver import SolverOptions
from ..machine.presets import coffee_lake_i7_9700k
from ..machine.spec import MachineSpec
from ..workloads.benchmarks import benchmark_by_name

#: Operators used by default (small/medium so the solves stay quick).
DEFAULT_OPERATORS = ("R9", "M5", "Y13")


@dataclass(frozen=True)
class PruningCheckResult:
    """Verification outcomes per operator."""

    per_operator: Dict[str, PruningVerification]
    text: str

    @property
    def all_sound(self) -> bool:
        """True when the pruned set dominated every checked permutation."""
        return all(v.pruning_is_sound for v in self.per_operator.values())


def run_pruning_check(
    operators: Sequence[str] = DEFAULT_OPERATORS,
    *,
    machine: Optional[MachineSpec] = None,
    level: str = "L2",
    sample_size: Optional[int] = 80,
    seed: int = 0,
) -> PruningCheckResult:
    """Run the pruning verification for several operators at one cache level."""
    machine = machine or coffee_lake_i7_9700k()
    capacity = machine.capacity_elements(level)
    options = SolverOptions(multistarts=1, maxiter=50)
    per_operator: Dict[str, PruningVerification] = {}
    for name in operators:
        spec = benchmark_by_name(name)
        per_operator[name] = verify_pruning(
            spec, capacity, sample_size=sample_size, seed=seed, options=options
        )
    rows = [
        [
            name,
            verification.permutations_checked,
            verification.pruned_best.volume,
            verification.exhaustive_best.volume,
            "yes" if verification.pruning_is_sound else "NO",
        ]
        for name, verification in per_operator.items()
    ]
    text = format_table(
        ["operator", "perms checked", "pruned best DV", "sampled best DV", "pruned dominates"],
        rows,
        float_format="{:.3e}",
    )
    return PruningCheckResult(per_operator=per_operator, text=text)


def main() -> None:
    """Run and print the pruning verification (module entry point)."""
    result = run_pruning_check()
    print("Pruning verification (Section 4): 8 classes vs. sampled permutations")
    print(result.text)


if __name__ == "__main__":
    main()
