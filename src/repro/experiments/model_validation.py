"""Experiments ``fig5`` and ``fig6``: model validation against simulated hardware.

Section 9 of the paper validates the analytical model on a single core of
the i7-9700K by sampling ~100 tile configurations per operator, measuring
each with hardware counters, and checking that

* the model's top-1/2/5 picks lose at most a few percent against the best
  sampled configuration (Figure 5), and
* the model-predicted ranking correlates with measured performance and with
  the data-movement counters of the predicted bottleneck level (Figure 6,
  for Resnet9, Mobnet2 and Yolo5).

The reproduction replaces the hardware with the slice-level cache-hierarchy
simulator (:mod:`repro.sim.tilesim`): each sampled configuration is
replayed against set-associative caches, yielding register/L1/L2/L3
traffic counters, and the performance model converts those measurements
into GFLOPS.  The model side is untouched — it predicts from the analytical
expressions alone — so the comparison remains meaningful.

Because the simulator runs in Python, the experiment defaults to spatially
scaled-down operators and a few dozen samples per operator; pass
``full=True`` (and patience) for the full-size sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..analysis.ranking import RankCorrelation, order_by_prediction, rank_correlation, top_k_loss
from ..analysis.reporting import format_table
from ..core.config import MultiLevelConfig
from ..core.tensor_spec import ConvSpec
from ..machine.presets import coffee_lake_i7_9700k
from ..machine.spec import MachineSpec
from ..sim.perfmodel import estimate_performance, predicted_rank_score
from ..sim.tilesim import SimulationOptions, count_tiles, simulate_execution
from ..workloads.benchmarks import (
    all_benchmarks,
    benchmark_by_name,
    figure6_operators,
    uniformly_scaled,
)
from ..workloads.sampling import SamplerOptions, sample_configurations

#: Default operators used for the quick Figure 5 sweep (one per network size
#: class); the full sweep uses all 32 operators.
DEFAULT_FIG5_OPERATORS = ("Y5", "Y13", "R2", "R9", "R12", "M2", "M5", "M9")


@dataclass(frozen=True)
class ValidationSettings:
    """Parameters of the model-validation experiments."""

    machine: Optional[MachineSpec] = None
    samples_per_operator: int = 24
    seed: int = 0
    #: Operators are scaled down (channels and spatial extents shrunk by a
    #: common factor, preserving each layer's character) so each stays below
    #: this many MACs — keeps the Python cache simulation tractable; ``None``
    #: disables scaling.
    max_macs: Optional[float] = 3.0e6
    #: Configurations whose innermost-tile count exceeds this are re-sampled.
    max_sim_tiles: int = 12_000
    ideal_caches: bool = False
    threads: int = 1


@dataclass(frozen=True)
class OperatorValidation:
    """Per-operator result: ranking quality of the analytical model."""

    operator: str
    num_configs: int
    topk_loss: Dict[int, float]
    performance_correlation: RankCorrelation
    counter_correlations: Dict[str, RankCorrelation]
    predicted_scores: Tuple[float, ...]
    measured_gflops: Tuple[float, ...]
    measured_counters: Dict[str, Tuple[float, ...]]
    elapsed_seconds: float


def _prepare_spec(name: str, settings: ValidationSettings) -> ConvSpec:
    spec = benchmark_by_name(name)
    if settings.max_macs is None:
        return spec
    return uniformly_scaled(spec, max_macs=settings.max_macs)


def _sample_simulatable_configs(
    spec: ConvSpec, settings: ValidationSettings
) -> List[MultiLevelConfig]:
    """Sample configurations whose simulation cost is acceptable."""
    wanted = settings.samples_per_operator
    options = SamplerOptions(seed=settings.seed)
    pool = sample_configurations(spec, count=wanted * 4, options=options)
    selected = [cfg for cfg in pool if count_tiles(spec, cfg) <= settings.max_sim_tiles]
    return selected[:wanted]


def validate_operator(name: str, settings: Optional[ValidationSettings] = None) -> OperatorValidation:
    """Run the Figure 5/6 protocol for one operator."""
    settings = settings or ValidationSettings()
    machine = settings.machine or coffee_lake_i7_9700k()
    spec = _prepare_spec(name, settings)
    configs = _sample_simulatable_configs(spec, settings)
    if len(configs) < 5:
        raise RuntimeError(
            f"could not sample enough simulatable configurations for {name!r}; "
            "increase max_sim_tiles or reduce max_macs"
        )

    sim_options = SimulationOptions(
        ideal_caches=settings.ideal_caches, max_tiles=settings.max_sim_tiles * 4
    )
    predicted: List[float] = []
    measured: List[float] = []
    counters: Dict[str, List[float]] = {"Reg": [], "L1": [], "L2": [], "L3": []}
    start = time.perf_counter()
    for config in configs:
        predicted.append(predicted_rank_score(spec, config, machine, threads=settings.threads))
        measurement = simulate_execution(spec, config, machine, sim_options)
        estimate = estimate_performance(
            spec, config, machine, threads=settings.threads, counters=measurement
        )
        measured.append(estimate.gflops)
        for level in counters:
            counters[level].append(measurement.level_volume_elements(level))
    elapsed = time.perf_counter() - start

    losses = {
        k: loss.loss for k, loss in top_k_loss(predicted, measured, ks=(1, 2, 5)).items()
    }
    perf_corr = rank_correlation(predicted, measured)
    counter_corr = {
        # Counters measure *cost*, so a good model ranking anti-correlates
        # with them; negate so "higher is better" like the performance case.
        level: rank_correlation(predicted, [-v for v in values])
        for level, values in counters.items()
    }
    return OperatorValidation(
        operator=name,
        num_configs=len(configs),
        topk_loss=losses,
        performance_correlation=perf_corr,
        counter_correlations=counter_corr,
        predicted_scores=tuple(predicted),
        measured_gflops=tuple(measured),
        measured_counters={level: tuple(values) for level, values in counters.items()},
        elapsed_seconds=elapsed,
    )


@dataclass(frozen=True)
class Figure5Result:
    """Top-k loss-of-performance per operator (the bars of Figure 5)."""

    per_operator: Dict[str, OperatorValidation]
    text: str

    def loss_table(self) -> Dict[str, Dict[int, float]]:
        """Mapping operator -> {k: loss} used by the benchmark assertions."""
        return {name: result.topk_loss for name, result in self.per_operator.items()}

    @property
    def worst_top5_loss(self) -> float:
        """Largest top-5 loss across operators (paper: < 4.5% for top-1)."""
        return max(result.topk_loss[5] for result in self.per_operator.values())


def run_figure5(
    operators: Optional[Sequence[str]] = None,
    settings: Optional[ValidationSettings] = None,
) -> Figure5Result:
    """Regenerate Figure 5: model-predicted top-1/2/5 loss per operator."""
    settings = settings or ValidationSettings()
    names = tuple(operators) if operators is not None else DEFAULT_FIG5_OPERATORS
    per_operator = {name: validate_operator(name, settings) for name in names}
    rows = [
        [
            name,
            result.num_configs,
            100.0 * result.topk_loss[1],
            100.0 * result.topk_loss[2],
            100.0 * result.topk_loss[5],
            result.performance_correlation.spearman,
        ]
        for name, result in per_operator.items()
    ]
    text = format_table(
        ["operator", "configs", "top-1 loss %", "top-2 loss %", "top-5 loss %", "spearman"],
        rows,
        float_format="{:.2f}",
    )
    return Figure5Result(per_operator=per_operator, text=text)


@dataclass(frozen=True)
class Figure6Result:
    """Rank-ordered series for the three Figure 6 operators."""

    per_operator: Dict[str, OperatorValidation]
    series: Dict[str, Dict[str, Tuple[float, ...]]]
    text: str


def run_figure6(settings: Optional[ValidationSettings] = None) -> Figure6Result:
    """Regenerate Figure 6: predicted rank ordering vs. measured metrics.

    For each of Resnet9, Mobnet2 and Yolo5, the configurations are ordered
    by decreasing model-predicted performance and the measured GFLOPS and
    per-level counters are reported in that order (the paper plots these
    series; here they are returned for inspection and the correlations are
    summarized in the rendered table).
    """
    settings = settings or ValidationSettings()
    operators = {"Resnet9": "R9", "Mobnet2": "M2", "Yolo5": "Y5"}
    per_operator: Dict[str, OperatorValidation] = {}
    series: Dict[str, Dict[str, Tuple[float, ...]]] = {}
    for label, name in operators.items():
        result = validate_operator(name, settings)
        per_operator[label] = result
        ordered: Dict[str, Tuple[float, ...]] = {
            "gflops": tuple(
                order_by_prediction(result.predicted_scores, result.measured_gflops)
            )
        }
        for level, values in result.measured_counters.items():
            ordered[level] = tuple(order_by_prediction(result.predicted_scores, values))
        series[label] = ordered

    rows = []
    for label, result in per_operator.items():
        rows.append(
            [
                label,
                result.num_configs,
                result.performance_correlation.spearman,
                result.counter_correlations["Reg"].spearman,
                result.counter_correlations["L1"].spearman,
                result.counter_correlations["L2"].spearman,
                result.counter_correlations["L3"].spearman,
            ]
        )
    text = format_table(
        [
            "operator",
            "configs",
            "perf corr",
            "reg corr",
            "L1 corr",
            "L2 corr",
            "L3 corr",
        ],
        rows,
        float_format="{:.2f}",
    )
    return Figure6Result(per_operator=per_operator, series=series, text=text)


def main() -> None:
    """Run the quick versions of Figures 5 and 6 and print their tables."""
    fig5 = run_figure5()
    print("Figure 5 (model-prediction loss-of-performance):")
    print(fig5.text)
    print()
    fig6 = run_figure6()
    print("Figure 6 (predicted rank vs. measured performance / counters):")
    print(fig6.text)


if __name__ == "__main__":
    main()
