"""Experiment ``table1``: regenerate Table 1 (benchmark operator configurations).

Table 1 of the paper lists the conv2d operators of Yolo-9000, ResNet-18 and
MobileNet used throughout the evaluation (output channels K, input channels
C, input spatial extent H/W, kernel size R/S, stride).  This experiment
renders the same table from :mod:`repro.workloads.benchmarks`, extended
with the derived output extents and FLOP counts, and performs the basic
sanity checks (operator counts per network, stride markers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.reporting import format_table
from ..workloads.benchmarks import network_benchmarks, network_names, table1_rows

#: Operator counts per network as stated in Section 9 of the paper.
EXPECTED_COUNTS = {"yolo9000": 11, "resnet18": 12, "mobilenet": 9}


@dataclass(frozen=True)
class Table1Result:
    """Rendered Table 1 plus the per-network operator counts."""

    rows: List[Dict[str, object]]
    counts: Dict[str, int]
    text: str

    @property
    def total_operators(self) -> int:
        """Total number of conv2d operators (32 in the paper)."""
        return sum(self.counts.values())


def run_table1() -> Table1Result:
    """Regenerate Table 1 and its summary counts."""
    rows = table1_rows()
    counts = {network: len(network_benchmarks(network)) for network in network_names()}
    headers = ["network", "layer", "K", "C", "H/W", "R/S", "stride", "N_h", "N_w", "GFLOP"]
    table_rows = [[row[h] for h in headers] for row in rows]
    text = format_table(headers, table_rows, float_format="{:.2f}")
    return Table1Result(rows=rows, counts=counts, text=text)


def main() -> None:
    """Print Table 1 (module entry point)."""
    result = run_table1()
    print("Table 1: conv2d operator configurations (Yolo-9000, ResNet-18, MobileNet)")
    print(result.text)
    print()
    print(
        "operators per network: "
        + ", ".join(f"{network}={count}" for network, count in result.counts.items())
        + f"; total={result.total_operators}"
    )


if __name__ == "__main__":
    main()
