"""Experiment ``table2``: strengths/limitations matrix of oneDNN, TVM and MOpt.

Table 2 of the paper is qualitative: it contrasts the three systems along
three axes — whether they use empirical auto-tuning, the quality of their
microkernel, and the extent of their design-space exploration.  Rather than
hard-coding the table, this experiment *derives* each cell from the actual
properties of the reproduction's implementations (e.g. the size of the
search space each system explores for a representative operator), so the
table doubles as a consistency check on the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.reporting import format_table
from ..baselines.autotvm_like import ConvTemplate
from ..baselines.onednn_like import ONEDNN_KERNEL_EFFICIENCY, schedule_library
from ..core.microkernel import design_microkernel
from ..core.pruning import pruning_statistics
from ..machine.presets import coffee_lake_i7_9700k
from ..machine.spec import MachineSpec
from ..workloads.benchmarks import benchmark_by_name


@dataclass(frozen=True)
class SystemCharacterization:
    """Derived properties of one system for the Table 2 comparison."""

    system: str
    auto_tuning: bool
    microkernel: str
    design_space: str
    explored_configurations: int


@dataclass(frozen=True)
class Table2Result:
    """The derived characterization of all three systems, plus its rendering."""

    systems: List[SystemCharacterization]
    text: str


def run_table2(machine: MachineSpec | None = None, operator: str = "Y12") -> Table2Result:
    """Derive Table 2 from the implementations, for one representative operator."""
    machine = machine or coffee_lake_i7_9700k()
    spec = benchmark_by_name(operator)

    onednn_schedules = schedule_library(spec, machine)
    onednn = SystemCharacterization(
        system="oneDNN (library baseline)",
        auto_tuning=False,
        microkernel=f"highly optimized (efficiency ~{ONEDNN_KERNEL_EFFICIENCY:.2f} of peak)",
        design_space=f"minimal: {len(onednn_schedules)} pre-determined schedules, heuristic dispatch",
        explored_configurations=len(onednn_schedules),
    )

    template = ConvTemplate(spec)
    tvm = SystemCharacterization(
        system="TVM / AutoTVM (auto-tuner baseline)",
        auto_tuning=True,
        microkernel="n/a (LLVM-vectorized code, no fixed microkernel)",
        design_space=(
            f"limited: fixed loop-order template, {template.space_size()} knob settings, "
            "auto-tuned by actual execution"
        ),
        explored_configurations=template.space_size(),
    )

    stats = pruning_statistics()
    microkernel = design_microkernel(machine, spec)
    mopt = SystemCharacterization(
        system="MOpt (this work)",
        auto_tuning=False,
        microkernel=(
            f"generated, not highly optimized (efficiency ~{microkernel.efficiency:.2f} of peak)"
        ),
        design_space=(
            "comprehensive: all tile-loop permutations and tile sizes via analytical "
            f"modeling ({stats['total_permutations']} permutations pruned to "
            f"{stats['num_classes']} solved cases per level)"
        ),
        explored_configurations=stats["total_permutations"],
    )

    systems = [onednn, tvm, mopt]
    headers = ["System", "Auto-tuning", "Microkernel", "Design-space exploration"]
    rows = [
        [s.system, "yes" if s.auto_tuning else "no", s.microkernel, s.design_space]
        for s in systems
    ]
    text = format_table(headers, rows)
    return Table2Result(systems=systems, text=text)


def main() -> None:
    """Print Table 2 (module entry point)."""
    result = run_table2()
    print("Table 2: strengths and limitations of oneDNN, TVM and MOpt")
    print(result.text)


if __name__ == "__main__":
    main()
