"""Experiment ``table2``: strengths/limitations matrix of oneDNN, TVM and MOpt.

Table 2 of the paper is qualitative: it contrasts the three systems along
three axes — whether they use empirical auto-tuning, the quality of their
microkernel, and the extent of their design-space exploration.  Rather than
hard-coding the table, this experiment *derives* each cell from the actual
properties of the reproduction's implementations (e.g. the size of the
search space each system explores for a representative operator), so the
table doubles as a consistency check on the baselines.

Each cell comes from the corresponding registered strategy's
``characterize`` hook, reached through :meth:`repro.api.Session.
characterize`, so adding a new comparison system to the registry
automatically makes it derivable here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.reporting import format_table
from ..api.session import Session
from ..machine.presets import coffee_lake_i7_9700k
from ..machine.spec import MachineSpec
from ..workloads.benchmarks import benchmark_by_name

#: Registry strategies characterized by Table 2, in presentation order.
TABLE2_STRATEGIES = ("onednn", "autotvm", "mopt")


@dataclass(frozen=True)
class SystemCharacterization:
    """Derived properties of one system for the Table 2 comparison."""

    system: str
    auto_tuning: bool
    microkernel: str
    design_space: str
    explored_configurations: int


@dataclass(frozen=True)
class Table2Result:
    """The derived characterization of all three systems, plus its rendering."""

    systems: List[SystemCharacterization]
    text: str


def run_table2(machine: MachineSpec | None = None, operator: str = "Y12") -> Table2Result:
    """Derive Table 2 from the implementations, for one representative operator."""
    machine = machine or coffee_lake_i7_9700k()
    spec = benchmark_by_name(operator)

    systems: List[SystemCharacterization] = []
    for name in TABLE2_STRATEGIES:
        info = Session(machine, name, cache=False).characterize(spec)
        systems.append(
            SystemCharacterization(
                system=str(info["system"]),
                auto_tuning=bool(info["auto_tuning"]),
                microkernel=str(info["microkernel"]),
                design_space=str(info["design_space"]),
                explored_configurations=int(info["explored_configurations"]),
            )
        )
    headers = ["System", "Auto-tuning", "Microkernel", "Design-space exploration"]
    rows = [
        [s.system, "yes" if s.auto_tuning else "no", s.microkernel, s.design_space]
        for s in systems
    ]
    text = format_table(headers, rows)
    return Table2Result(systems=systems, text=text)


def main() -> None:
    """Print Table 2 (module entry point)."""
    result = run_table2()
    print("Table 2: strengths and limitations of oneDNN, TVM and MOpt")
    print(result.text)


if __name__ == "__main__":
    main()
