"""Deprecation plumbing for the pre-``repro.api`` entry points.

Old entry points keep working — the redesign moves the front door, it
does not break doors — but the designated aliases warn once per process
so downstream code migrates.  :func:`warn_once` is keyed by alias name:
the first access emits exactly one :class:`DeprecationWarning`, later
accesses are silent (callers additionally cache the resolved attribute
in their module globals, so ``__getattr__`` is not even re-entered).
"""

from __future__ import annotations

import warnings
from typing import Set

_WARNED: Set[str] = set()


def warn_once(alias: str, replacement: str, *, stacklevel: int = 3) -> None:
    """Emit one :class:`DeprecationWarning` for ``alias``, ever."""
    if alias in _WARNED:
        return
    _WARNED.add(alias)
    warnings.warn(
        f"{alias} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def reset(alias: str) -> None:
    """Forget that ``alias`` warned (tests only)."""
    _WARNED.discard(alias)
