"""Async serving front-end for the network optimization engine.

The paper's Table 2 argument — analytical modeling makes design-space
exploration cheap enough to run *on demand* — only pays off in practice
if many clients can ask for optimizations concurrently against one
shared store of results.  This package is that front-end:

* :class:`OptimizationServer` — an asyncio service over
  :class:`~repro.engine.network.NetworkOptimizer`'s building blocks:
  bounded priority queue with deadlines and reject-with-retry-after
  back-pressure, per-request streaming progress events, and
  single-flight coalescing of identical in-flight operator solves on
  top of the thread-safe two-tier result cache.
* :class:`ServingClient` / :class:`TCPServingClient` — in-process and
  JSON-lines-over-TCP clients with overload retry; the TCP client adds
  connect/read/write timeouts (``timeout_s``) and
  :class:`~repro.reliability.RetryPolicy`-driven reconnect.
* :mod:`repro.serving.protocol` — the plain-data events and responses
  flowing through both transports (the request type is the API-wide
  :class:`repro.api.types.OptimizeRequest`, re-exported here).
* ``python -m repro serve|demo`` — a TCP endpoint (with graceful drain
  on shutdown via ``--drain-timeout``) and a concurrent-client demo
  (``python -m repro.serving`` remains as a deprecated shim).

The usual embedding is :meth:`repro.api.Session.optimize_async`, which
lazily runs one :class:`OptimizationServer` over the session's
machine/strategy/cache.  The server supports graceful shutdown
(``stop(drain=True, drain_timeout=...)``: stop admissions, finish
accepted requests) and cancellation of abandoned requests
(:meth:`OptimizationServer.cancel`, wired to TCP client disconnects so
a dropped connection stops holding a queue slot).

Quick in-process use::

    import asyncio
    from repro import coffee_lake_i7_9700k
    from repro.engine import ResultCache
    from repro.serving import OptimizationServer, OptimizeRequest, ServingClient

    async def main():
        server = OptimizationServer(
            coffee_lake_i7_9700k(),
            "mopt",
            strategy_options={"threads": 8, "measure": False},
            cache=ResultCache("~/.cache/repro-results"),
        )
        async with server:
            client = ServingClient(server)
            responses = await client.optimize_many(
                ["resnet18"] * 8    # eight concurrent requests, one solve set
            )
            print(responses[0].total_gflops, server.duplicate_solves())  # ... 0

    asyncio.run(main())
"""

from .client import ServingClient, ServingTimeoutError, TCPServingClient
from .coalescing import SingleFlight
from .protocol import (
    AcceptedEvent,
    CompletedEvent,
    ExpiredEvent,
    FailedEvent,
    OperatorEvent,
    OperatorFigure,
    OptimizeRequest,
    OptimizeResponse,
    RejectedEvent,
    ServingEvent,
    collect_operator_events,
    decode_message,
    encode_message,
    event_from_dict,
    event_to_dict,
)
from .queue import BoundedRequestQueue, QueueFullError
from .server import (
    DeadlineExpiredError,
    OptimizationServer,
    RequestFailedError,
    RequestHandle,
    ServerConfig,
    ServerOverloadedError,
    ServerStats,
    start_tcp_server,
)

__all__ = [
    "AcceptedEvent",
    "BoundedRequestQueue",
    "CompletedEvent",
    "DeadlineExpiredError",
    "ExpiredEvent",
    "FailedEvent",
    "OperatorEvent",
    "OperatorFigure",
    "OptimizationServer",
    "OptimizeRequest",
    "OptimizeResponse",
    "QueueFullError",
    "RejectedEvent",
    "RequestFailedError",
    "RequestHandle",
    "ServerConfig",
    "ServerOverloadedError",
    "ServerStats",
    "ServingClient",
    "ServingEvent",
    "ServingTimeoutError",
    "SingleFlight",
    "TCPServingClient",
    "collect_operator_events",
    "decode_message",
    "encode_message",
    "event_from_dict",
    "event_to_dict",
    "start_tcp_server",
]
