"""Deprecated entry point: ``python -m repro.serving`` → ``python -m repro``.

The serving subcommands moved to the unified top-level CLI::

    python -m repro serve --machine i7-9700k --port 8763
    python -m repro demo --clients 8 --machine i7-9700k

This shim keeps the historical invocation working: it emits one
:class:`DeprecationWarning` and delegates to :func:`repro.cli.main` with
the argument list unchanged (the new CLI accepts a superset of the old
flags, plus ``serve --drain-timeout`` for graceful shutdown).
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

from .._deprecation import warn_once


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Deprecated alias of :func:`repro.cli.main` (serve/demo subset)."""
    warn_once(
        "python -m repro.serving (repro.serving.cli.main)",
        "python -m repro (repro.cli.main)",
    )
    from ..cli import main as cli_main

    return cli_main(argv)


if __name__ == "__main__":
    sys.exit(main())
