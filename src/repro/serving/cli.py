"""Command-line entry points of the optimization service.

Two subcommands::

    # A TCP endpoint over a machine preset, with a persistent cache:
    python -m repro.serving serve --machine i7-9700k --port 8763 \
        --cache-dir /tmp/repro-cache

    # The concurrent-client demo: N clients driving overlapping Table 1
    # networks through one in-process server (cold round + warm round),
    # verifying that duplicate operators were solved exactly once:
    python -m repro.serving demo --clients 8 --machine i7-9700k

The demo is the CLI face of
:func:`repro.experiments.serving_demo.run_serving_demo`; the benchmark
harness records the same figures to ``BENCH_optimizer.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional, Sequence

from ..engine.cache import ResultCache
from ..machine.presets import available_machines, get_machine
from .server import OptimizationServer, ServerConfig, start_tcp_server


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--machine",
        default="i7-9700k",
        choices=available_machines(),
        help="machine preset to optimize for",
    )
    parser.add_argument(
        "--strategy", default="mopt", help="default search strategy (registry name)"
    )
    parser.add_argument(
        "--threads", type=int, default=8, help="strategy threads option"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persistent result-cache directory"
    )
    parser.add_argument(
        "--queue-depth", type=int, default=64, help="bounded queue depth"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="concurrent request workers"
    )
    parser.add_argument(
        "--solve-threads", type=int, default=4, help="solver thread-pool width"
    )


def _strategy_options(args: argparse.Namespace) -> dict:
    options: dict = {}
    if args.threads:
        options["threads"] = args.threads
    if args.strategy == "mopt":
        # Network serving wants the purely analytical prediction: no
        # virtual measurement in the loop (other strategies measure by
        # construction and have no such knob).
        options["measure"] = False
    return options


def _build_server(args: argparse.Namespace) -> OptimizationServer:
    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    options = _strategy_options(args)
    return OptimizationServer(
        get_machine(args.machine),
        args.strategy,
        strategy_options=options,
        cache=cache,
        config=ServerConfig(
            max_queue_depth=args.queue_depth,
            workers=args.workers,
            solve_threads=args.solve_threads,
        ),
    )


async def _run_serve(args: argparse.Namespace) -> int:
    server = _build_server(args)
    async with server:
        tcp = await start_tcp_server(server, args.host, args.port)
        sockets = tcp.sockets or ()
        for sock in sockets:
            print(f"serving on {sock.getsockname()}", flush=True)
        try:
            await asyncio.Event().wait()  # run until cancelled / Ctrl-C
        except asyncio.CancelledError:
            pass
        finally:
            tcp.close()
            await tcp.wait_closed()
    return 0


async def _run_demo(args: argparse.Namespace) -> int:
    from ..experiments.serving_demo import run_serving_demo

    result = await run_serving_demo(
        machine=get_machine(args.machine),
        clients=args.clients,
        networks=tuple(args.networks),
        strategy=args.strategy,
        strategy_options=_strategy_options(args),
        cache_dir=args.cache_dir,
        layers_per_network=args.layers,
        queue_depth=args.queue_depth,
        workers=args.workers,
        solve_threads=args.solve_threads,
    )
    print(result.text)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return 0 if result.duplicate_solves == 0 else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serving", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a TCP optimization endpoint")
    _add_common_options(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8763)

    demo = sub.add_parser(
        "demo", help="concurrent-client demo over Table 1 networks"
    )
    _add_common_options(demo)
    demo.add_argument("--clients", type=int, default=8)
    demo.add_argument(
        "--networks",
        nargs="+",
        default=["resnet18", "mobilenet"],
        help="Table 1 networks the clients request (cycled)",
    )
    demo.add_argument(
        "--layers",
        type=int,
        default=None,
        help="restrict each network to its first N layers (quick runs)",
    )
    demo.add_argument("--json", action="store_true", help="also print JSON")

    args = parser.parse_args(argv)
    runner = _run_serve if args.command == "serve" else _run_demo
    try:
        return asyncio.run(runner(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
