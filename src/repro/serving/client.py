"""Clients of the optimization service: in-process and TCP.

:class:`ServingClient` drives an in-process
:class:`~repro.serving.server.OptimizationServer` (the normal embedding:
one process, many concurrent asyncio clients sharing one cache).
:class:`TCPServingClient` speaks the same JSON-lines protocol over a
socket to a server started with
:func:`~repro.serving.server.start_tcp_server`.

Both expose the same surface: ``optimize(...)`` returns the terminal
:class:`~repro.serving.protocol.OptimizeResponse` (honoring the server's
back-pressure by retrying after the hinted delay, up to
``max_retries``), with an optional ``on_event`` callback observing the
streaming per-operator progress.

The TCP client is additionally hardened against a misbehaving peer:
``timeout_s`` bounds connect, write-drain and the silence between
events (a hung server raises :class:`ServingTimeoutError` instead of
blocking forever), and an optional
:class:`~repro.reliability.RetryPolicy` drives automatic reconnect — a
dropped/hung connection is reopened on the policy's backoff schedule
and the request resent (idempotent server-side: re-solves hit the
shared cache).  Reconnects increment the ``tcp.reconnects`` health
counter.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..api.types import next_request_id
from ..obs.trace import current_context, span
from ..reliability import RetryPolicy, health

from ..core.tensor_spec import ConvSpec
from .protocol import (
    CompletedEvent,
    ExpiredEvent,
    FailedEvent,
    OptimizeRequest,
    OptimizeResponse,
    RejectedEvent,
    ServingEvent,
    decode_message,
    encode_message,
    event_from_dict,
)
from .server import (
    DeadlineExpiredError,
    OptimizationServer,
    RequestFailedError,
    ServerOverloadedError,
)

EventCallback = Callable[[ServingEvent], None]
NetworkArg = Union[str, Sequence[ConvSpec]]


class ServingTimeoutError(Exception):
    """The TCP peer went silent past the client's ``timeout_s``."""


def _as_request(
    network: NetworkArg,
    *,
    strategy: Optional[str],
    strategy_options: Optional[Mapping[str, Any]],
    batch: int,
    priority: int,
    deadline_s: Optional[float],
    trace_id: Optional[str] = None,
    parent_span: Optional[str] = None,
) -> OptimizeRequest:
    if not isinstance(network, str):
        network = tuple(network)
    return OptimizeRequest(
        network=network,
        strategy=strategy,
        strategy_options=dict(strategy_options or {}),
        batch=batch,
        priority=priority,
        deadline_s=deadline_s,
        trace_id=trace_id,
        parent_span=parent_span,
    )


def _network_label(network: NetworkArg) -> str:
    return network if isinstance(network, str) else f"<{len(network)} ops>"


class ServingClient:
    """In-process client of one :class:`OptimizationServer`."""

    def __init__(self, server: OptimizationServer, *, max_retries: int = 5):
        self.server = server
        self.max_retries = max_retries
        self.rejections = 0

    async def optimize(
        self,
        network: NetworkArg,
        *,
        strategy: Optional[str] = None,
        strategy_options: Optional[Mapping[str, Any]] = None,
        batch: int = 1,
        priority: int = 10,
        deadline_s: Optional[float] = None,
        on_event: Optional[EventCallback] = None,
    ) -> OptimizeResponse:
        """Submit one request and await its response.

        Overload rejections are retried after the server's
        ``retry_after_s`` hint, up to ``max_retries`` times; the final
        rejection propagates as :class:`ServerOverloadedError`.

        When tracing is enabled the whole call is one
        ``serving.client.request`` span; the server's ``serving.request``
        span joins it through the ambient context (same process), so a
        request's client-side wall and its server-side decomposition
        land in one trace.
        """
        with span(
            "serving.client.request",
            transport="inproc",
            network=_network_label(network),
        ):
            ctx = current_context()
            request = _as_request(
                network,
                strategy=strategy,
                strategy_options=strategy_options,
                batch=batch,
                priority=priority,
                deadline_s=deadline_s,
                trace_id=ctx[0] if ctx else None,
                parent_span=ctx[1] if ctx else None,
            )
            attempts = 0
            while True:
                try:
                    handle = self.server.submit(request)
                except ServerOverloadedError as error:
                    self.rejections += 1
                    attempts += 1
                    if attempts > self.max_retries:
                        raise
                    await asyncio.sleep(error.retry_after_s)
                    continue
                if on_event is None:
                    return await handle.result()
                async for event in handle.events():
                    on_event(event)
                return await handle.result()

    async def optimize_many(
        self,
        networks: Sequence[NetworkArg],
        *,
        strategy: Optional[str] = None,
        strategy_options: Optional[Mapping[str, Any]] = None,
        priority: int = 10,
        deadline_s: Optional[float] = None,
    ) -> List[OptimizeResponse]:
        """Optimize several networks concurrently (one request each)."""
        return list(
            await asyncio.gather(
                *(
                    self.optimize(
                        network,
                        strategy=strategy,
                        strategy_options=strategy_options,
                        priority=priority,
                        deadline_s=deadline_s,
                    )
                    for network in networks
                )
            )
        )


class TCPServingClient:
    """JSON-lines TCP client of :func:`start_tcp_server`.

    One connection can carry many concurrent requests; events are routed
    back to their request by ``request_id``.

    ``timeout_s`` (default 30 s, ``None`` disables) bounds the connect,
    each write-drain, and the maximum silence between events of an
    in-flight request; past it :class:`ServingTimeoutError` is raised.
    ``reconnect`` (a :class:`~repro.reliability.RetryPolicy`) makes a
    client built via :meth:`connect` transparently reopen a dropped or
    hung connection and resend the interrupted request on the policy's
    backoff schedule; without it connection errors propagate as before.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_retries: int = 5,
        timeout_s: Optional[float] = 30.0,
        reconnect: Optional[RetryPolicy] = None,
    ):
        self._reader = reader
        self._writer = writer
        self.max_retries = max_retries
        self.timeout_s = timeout_s
        self.reconnect = reconnect
        self.rejections = 0
        self.reconnects = 0
        self._streams: dict = {}
        self._reader_task: Optional["asyncio.Task[None]"] = None
        # Populated by connect(); reconnect only works with an address.
        self._host: Optional[str] = None
        self._port: Optional[int] = None

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 8763,
        *,
        max_retries: int = 5,
        timeout_s: Optional[float] = 30.0,
        reconnect: Optional[RetryPolicy] = None,
    ) -> "TCPServingClient":
        """Open a connection to a serving endpoint (bounded by ``timeout_s``)."""
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout_s
        )
        client = cls(
            reader, writer,
            max_retries=max_retries, timeout_s=timeout_s, reconnect=reconnect,
        )
        client._host, client._port = host, port
        client._reader_task = asyncio.ensure_future(client._read_loop())
        return client

    async def close(self) -> None:
        """Close the connection (pending requests fail with EOF errors)."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "TCPServingClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        """Demultiplex incoming event lines to per-request queues."""
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    payload = decode_message(line)
                except (ValueError, KeyError):
                    continue
                if payload.get("type") == "stats":
                    # Stats replies are raw dicts, not serving events —
                    # route them to their waiter before event decoding
                    # (which rejects unknown frame types).
                    queue = self._streams.get(payload.get("request_id"))
                    if queue is not None:
                        queue.put_nowait(payload)
                    continue
                try:
                    event = event_from_dict(payload)
                except (ValueError, KeyError):
                    continue
                queue = self._streams.get(event.request_id)
                if queue is not None:
                    queue.put_nowait(event)
        finally:
            eof = ConnectionResetError("connection closed by server")
            for queue in self._streams.values():
                queue.put_nowait(eof)

    async def _reconnect(self) -> None:
        """Tear down the dead connection and open a fresh one."""
        assert self._host is not None and self._port is not None
        if self._reader_task is not None:
            self._reader_task.cancel()
            await asyncio.gather(self._reader_task, return_exceptions=True)
            self._reader_task = None
        try:
            self._writer.close()
        except Exception:
            pass  # the transport may already be gone
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(self._host, self._port), self.timeout_s
        )
        self._reader, self._writer = reader, writer
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self.reconnects += 1
        health.incr("tcp.reconnects")

    async def _roundtrip_reconnecting(
        self, request: OptimizeRequest, on_event: Optional[EventCallback]
    ) -> Tuple[Optional[OptimizeResponse], Optional[ServingEvent]]:
        """One request, transparently resent across reconnects.

        Connection loss and peer silence are retried on the ``reconnect``
        policy's backoff schedule (when one was given and the client
        knows its address); resending is safe because the server treats
        each line independently and re-solves hit the shared cache.
        """
        attempt = 0
        while True:
            try:
                return await self._roundtrip(request, on_event)
            except (
                ConnectionResetError,
                BrokenPipeError,
                ServingTimeoutError,
                OSError,
            ):
                policy = self.reconnect
                attempt += 1
                if (
                    policy is None
                    or self._host is None
                    or attempt >= policy.max_attempts
                ):
                    raise
                await asyncio.sleep(policy.delay_for(attempt))
                try:
                    await self._reconnect()
                except (OSError, asyncio.TimeoutError):
                    # Peer still down: burn this attempt and let the next
                    # loop iteration surface the failure (or retry again).
                    continue

    async def _roundtrip(
        self, request: OptimizeRequest, on_event: Optional[EventCallback]
    ) -> Tuple[Optional[OptimizeResponse], Optional[ServingEvent]]:
        """Send one request; return (response, terminal rejection/None)."""
        queue: "asyncio.Queue" = asyncio.Queue()
        self._streams[request.request_id] = queue
        try:
            self._writer.write(encode_message(request.to_dict()))
            try:
                await asyncio.wait_for(self._writer.drain(), self.timeout_s)
            except asyncio.TimeoutError:
                raise ServingTimeoutError(
                    f"write stalled past {self.timeout_s:.1f}s"
                ) from None
            while True:
                try:
                    event = await asyncio.wait_for(queue.get(), self.timeout_s)
                except asyncio.TimeoutError:
                    raise ServingTimeoutError(
                        f"no event from server within {self.timeout_s:.1f}s "
                        f"for request {request.request_id}"
                    ) from None
                if isinstance(event, BaseException):
                    raise event
                if on_event is not None:
                    on_event(event)
                if isinstance(event, CompletedEvent):
                    return event.response, None
                if isinstance(event, RejectedEvent):
                    return None, event
                if isinstance(event, ExpiredEvent):
                    raise DeadlineExpiredError(
                        f"request {request.request_id} expired after "
                        f"{event.waited_s * 1e3:.1f} ms"
                    )
                if isinstance(event, FailedEvent):
                    raise RequestFailedError(event.error)
        finally:
            self._streams.pop(request.request_id, None)

    async def optimize(
        self,
        network: NetworkArg,
        *,
        strategy: Optional[str] = None,
        strategy_options: Optional[Mapping[str, Any]] = None,
        batch: int = 1,
        priority: int = 10,
        deadline_s: Optional[float] = None,
        on_event: Optional[EventCallback] = None,
    ) -> OptimizeResponse:
        """Submit one request over TCP and await its terminal response.

        When tracing is enabled the whole call is one
        ``serving.client.request`` span whose ``(trace_id, span_id)``
        rides the wire in the request payload — the server's
        ``serving.request`` span (and its queue/coalesce/solve/respond
        children) parents to it, so one trace id covers the request from
        the client socket through the solve pool and back.
        """
        with span(
            "serving.client.request",
            transport="tcp",
            network=_network_label(network),
        ):
            ctx = current_context()
            attempts = 0
            while True:
                request = _as_request(
                    network,
                    strategy=strategy,
                    strategy_options=strategy_options,
                    batch=batch,
                    priority=priority,
                    deadline_s=deadline_s,
                    trace_id=ctx[0] if ctx else None,
                    parent_span=ctx[1] if ctx else None,
                )
                response, rejection = await self._roundtrip_reconnecting(
                    request, on_event
                )
                if response is not None:
                    return response
                assert rejection is not None
                self.rejections += 1
                attempts += 1
                if attempts > self.max_retries:
                    raise ServerOverloadedError(rejection.retry_after_s)
                await asyncio.sleep(rejection.retry_after_s)

    async def stats(
        self, *, prometheus: bool = False
    ) -> Union[Dict[str, Any], str]:
        """Fetch the server's stats over the wire (the ``stats`` verb).

        Returns the server's :meth:`OptimizationServer.stats_snapshot`
        dict, or — with ``prometheus=True`` — the process-wide metrics
        snapshot rendered as Prometheus text exposition (a ``str``).
        """
        request_id = next_request_id("stats")
        fmt = "prometheus" if prometheus else "json"
        queue: "asyncio.Queue" = asyncio.Queue()
        self._streams[request_id] = queue
        try:
            self._writer.write(
                encode_message(
                    {"verb": "stats", "request_id": request_id, "format": fmt}
                )
            )
            try:
                await asyncio.wait_for(self._writer.drain(), self.timeout_s)
            except asyncio.TimeoutError:
                raise ServingTimeoutError(
                    f"write stalled past {self.timeout_s:.1f}s"
                ) from None
            try:
                reply = await asyncio.wait_for(queue.get(), self.timeout_s)
            except asyncio.TimeoutError:
                raise ServingTimeoutError(
                    f"no stats reply within {self.timeout_s:.1f}s"
                ) from None
            if isinstance(reply, BaseException):
                raise reply
            if isinstance(reply, FailedEvent):
                raise RequestFailedError(reply.error)
            return reply["prometheus"] if prometheus else reply["stats"]
        finally:
            self._streams.pop(request_id, None)
