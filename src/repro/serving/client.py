"""Clients of the optimization service: in-process and TCP.

:class:`ServingClient` drives an in-process
:class:`~repro.serving.server.OptimizationServer` (the normal embedding:
one process, many concurrent asyncio clients sharing one cache).
:class:`TCPServingClient` speaks the same JSON-lines protocol over a
socket to a server started with
:func:`~repro.serving.server.start_tcp_server`.

Both expose the same surface: ``optimize(...)`` returns the terminal
:class:`~repro.serving.protocol.OptimizeResponse` (honoring the server's
back-pressure by retrying after the hinted delay, up to
``max_retries``), with an optional ``on_event`` callback observing the
streaming per-operator progress.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.tensor_spec import ConvSpec
from .protocol import (
    CompletedEvent,
    ExpiredEvent,
    FailedEvent,
    OptimizeRequest,
    OptimizeResponse,
    RejectedEvent,
    ServingEvent,
    decode_message,
    encode_message,
    event_from_dict,
)
from .server import (
    DeadlineExpiredError,
    OptimizationServer,
    RequestFailedError,
    ServerOverloadedError,
)

EventCallback = Callable[[ServingEvent], None]
NetworkArg = Union[str, Sequence[ConvSpec]]


def _as_request(
    network: NetworkArg,
    *,
    strategy: Optional[str],
    strategy_options: Optional[Mapping[str, Any]],
    batch: int,
    priority: int,
    deadline_s: Optional[float],
) -> OptimizeRequest:
    if not isinstance(network, str):
        network = tuple(network)
    return OptimizeRequest(
        network=network,
        strategy=strategy,
        strategy_options=dict(strategy_options or {}),
        batch=batch,
        priority=priority,
        deadline_s=deadline_s,
    )


class ServingClient:
    """In-process client of one :class:`OptimizationServer`."""

    def __init__(self, server: OptimizationServer, *, max_retries: int = 5):
        self.server = server
        self.max_retries = max_retries
        self.rejections = 0

    async def optimize(
        self,
        network: NetworkArg,
        *,
        strategy: Optional[str] = None,
        strategy_options: Optional[Mapping[str, Any]] = None,
        batch: int = 1,
        priority: int = 10,
        deadline_s: Optional[float] = None,
        on_event: Optional[EventCallback] = None,
    ) -> OptimizeResponse:
        """Submit one request and await its response.

        Overload rejections are retried after the server's
        ``retry_after_s`` hint, up to ``max_retries`` times; the final
        rejection propagates as :class:`ServerOverloadedError`.
        """
        request = _as_request(
            network,
            strategy=strategy,
            strategy_options=strategy_options,
            batch=batch,
            priority=priority,
            deadline_s=deadline_s,
        )
        attempts = 0
        while True:
            try:
                handle = self.server.submit(request)
            except ServerOverloadedError as error:
                self.rejections += 1
                attempts += 1
                if attempts > self.max_retries:
                    raise
                await asyncio.sleep(error.retry_after_s)
                continue
            if on_event is None:
                return await handle.result()
            async for event in handle.events():
                on_event(event)
            return await handle.result()

    async def optimize_many(
        self,
        networks: Sequence[NetworkArg],
        *,
        strategy: Optional[str] = None,
        strategy_options: Optional[Mapping[str, Any]] = None,
        priority: int = 10,
        deadline_s: Optional[float] = None,
    ) -> List[OptimizeResponse]:
        """Optimize several networks concurrently (one request each)."""
        return list(
            await asyncio.gather(
                *(
                    self.optimize(
                        network,
                        strategy=strategy,
                        strategy_options=strategy_options,
                        priority=priority,
                        deadline_s=deadline_s,
                    )
                    for network in networks
                )
            )
        )


class TCPServingClient:
    """JSON-lines TCP client of :func:`start_tcp_server`.

    One connection can carry many concurrent requests; events are routed
    back to their request by ``request_id``.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        max_retries: int = 5,
    ):
        self._reader = reader
        self._writer = writer
        self.max_retries = max_retries
        self.rejections = 0
        self._streams: dict = {}
        self._reader_task: Optional["asyncio.Task[None]"] = None

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 8763, *, max_retries: int = 5
    ) -> "TCPServingClient":
        """Open a connection to a serving endpoint."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, max_retries=max_retries)
        client._reader_task = asyncio.ensure_future(client._read_loop())
        return client

    async def close(self) -> None:
        """Close the connection (pending requests fail with EOF errors)."""
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

    async def __aenter__(self) -> "TCPServingClient":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        """Demultiplex incoming event lines to per-request queues."""
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                try:
                    event = event_from_dict(decode_message(line))
                except (ValueError, KeyError):
                    continue
                queue = self._streams.get(event.request_id)
                if queue is not None:
                    queue.put_nowait(event)
        finally:
            eof = ConnectionResetError("connection closed by server")
            for queue in self._streams.values():
                queue.put_nowait(eof)

    async def _roundtrip(
        self, request: OptimizeRequest, on_event: Optional[EventCallback]
    ) -> Tuple[Optional[OptimizeResponse], Optional[ServingEvent]]:
        """Send one request; return (response, terminal rejection/None)."""
        queue: "asyncio.Queue" = asyncio.Queue()
        self._streams[request.request_id] = queue
        try:
            self._writer.write(encode_message(request.to_dict()))
            await self._writer.drain()
            while True:
                event = await queue.get()
                if isinstance(event, BaseException):
                    raise event
                if on_event is not None:
                    on_event(event)
                if isinstance(event, CompletedEvent):
                    return event.response, None
                if isinstance(event, RejectedEvent):
                    return None, event
                if isinstance(event, ExpiredEvent):
                    raise DeadlineExpiredError(
                        f"request {request.request_id} expired after "
                        f"{event.waited_s * 1e3:.1f} ms"
                    )
                if isinstance(event, FailedEvent):
                    raise RequestFailedError(event.error)
        finally:
            self._streams.pop(request.request_id, None)

    async def optimize(
        self,
        network: NetworkArg,
        *,
        strategy: Optional[str] = None,
        strategy_options: Optional[Mapping[str, Any]] = None,
        batch: int = 1,
        priority: int = 10,
        deadline_s: Optional[float] = None,
        on_event: Optional[EventCallback] = None,
    ) -> OptimizeResponse:
        """Submit one request over TCP and await its terminal response."""
        attempts = 0
        while True:
            request = _as_request(
                network,
                strategy=strategy,
                strategy_options=strategy_options,
                batch=batch,
                priority=priority,
                deadline_s=deadline_s,
            )
            response, rejection = await self._roundtrip(request, on_event)
            if response is not None:
                return response
            assert rejection is not None
            self.rejections += 1
            attempts += 1
            if attempts > self.max_retries:
                raise ServerOverloadedError(rejection.retry_after_s)
            await asyncio.sleep(rejection.retry_after_s)
