"""Event-loop-level single-flight coalescing of identical computations.

Many concurrent clients asking the service to optimize overlapping
networks (say, eight clients each submitting ResNet-18) reduce to the
same distinct operator keys.  :class:`SingleFlight` ensures each key has
at most one computation in flight *on the event loop*: the first caller
becomes the leader and starts the work as a task, every concurrent
caller awaits that same task, and the registration is dropped the moment
the task finishes (completed results live in the
:class:`~repro.engine.cache.ResultCache` underneath, which has its own
thread-level single-flight for non-asyncio users of a shared cache).

Followers awaiting a leader's task are shielded from each other: one
follower being cancelled does not cancel the shared computation.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict


class SingleFlight:
    """Coalesce concurrent computations of the same key on one event loop."""

    def __init__(self) -> None:
        self._inflight: Dict[str, "asyncio.Task[Any]"] = {}
        self.leaders = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def is_inflight(self, key: str) -> bool:
        """Whether ``key`` currently has a computation in flight."""
        return key in self._inflight

    async def run(
        self, key: str, supplier: Callable[[], Awaitable[Any]]
    ) -> Any:
        """Return ``supplier()``'s result, computing each key at most once.

        Concurrent calls with the same key share one task; the supplier
        is only invoked by the leader.  Exceptions propagate to every
        waiter and release the key so a later call can retry.
        """
        task = self._inflight.get(key)
        if task is None:
            self.leaders += 1
            task = asyncio.ensure_future(supplier())
            self._inflight[key] = task
            task.add_done_callback(lambda _t, k=key: self._inflight.pop(k, None))
        else:
            self.coalesced += 1
        return await asyncio.shield(task)
