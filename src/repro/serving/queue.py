"""Bounded priority request queue with deadline-aware admission.

The serving front-end admits requests through this queue:

* **priority ordering** — lower values first, FIFO within one priority
  (a monotonically increasing sequence number breaks ties, so two equal
  priorities can never compare the underlying entries);
* **bounded depth** — :meth:`BoundedRequestQueue.put_nowait` never
  blocks: when the queue is at capacity it raises
  :class:`QueueFullError` carrying a ``retry_after_s`` hint scaled by
  the current backlog, which the server converts into a reject-with-
  retry-after event (back-pressure is pushed to clients instead of
  accumulating unbounded memory);
* **deadline awareness** — entries carry an absolute expiry time;
  :meth:`get` drops already-expired entries and hands them to the
  ``on_expired`` callback instead of a worker, so dead requests never
  occupy solve capacity.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple


class QueueFullError(Exception):
    """Raised on admission when the queue is at capacity (back-pressure)."""

    def __init__(self, depth: int, retry_after_s: float):
        super().__init__(
            f"queue full ({depth} requests pending); retry after "
            f"{retry_after_s:.2f}s"
        )
        self.depth = depth
        self.retry_after_s = retry_after_s


@dataclass(order=True)
class _Entry:
    priority: int
    sequence: int
    item: Any = field(compare=False)
    expires_at: Optional[float] = field(compare=False, default=None)


class BoundedRequestQueue:
    """Asyncio priority queue with bounded depth and deadline expiry.

    Single-event-loop use only (like all asyncio primitives); the
    server's workers and admission path all live on one loop.
    """

    def __init__(
        self,
        max_depth: int = 64,
        *,
        retry_after_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
        on_expired: Optional[Callable[[Any, float], None]] = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.retry_after_s = retry_after_s
        self._clock = clock
        self._on_expired = on_expired
        self._heap: List[_Entry] = []
        self._sequence = 0
        self._available: asyncio.Event = asyncio.Event()
        self.accepted = 0
        self.rejected = 0
        self.expired = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._heap)

    @property
    def depth(self) -> int:
        """Number of queued (not yet claimed) requests."""
        return len(self._heap)

    def retry_after_hint(self) -> float:
        """Back-off hint for a rejected client, scaled by the backlog."""
        backlog = max(len(self._heap), 1)
        return self.retry_after_s * backlog / self.max_depth + self.retry_after_s

    def _expire_entry(
        self, entry: _Entry, overstay: float,
        on_expired: Optional[Callable[[Any, float], None]],
    ) -> None:
        self.expired += 1
        callback = on_expired if on_expired is not None else self._on_expired
        if callback is not None:
            callback(entry.item, overstay)

    def purge_expired(
        self, *, on_expired: Optional[Callable[[Any, float], None]] = None
    ) -> int:
        """Drop every already-expired entry; returns how many were dropped.

        Called on admission when the queue looks full: dead requests must
        not hold admission slots (they would turn the back-pressure
        signal into spurious rejections of live traffic).
        """
        now = self._clock()
        live: List[_Entry] = []
        dropped = 0
        for entry in self._heap:
            if entry.expires_at is not None and now >= entry.expires_at:
                self._expire_entry(entry, now - entry.expires_at, on_expired)
                dropped += 1
            else:
                live.append(entry)
        if dropped:
            heapq.heapify(live)
            self._heap = live
            if not live:
                self._available.clear()
        return dropped

    # ------------------------------------------------------------------
    def put_nowait(
        self,
        item: Any,
        *,
        priority: int = 10,
        deadline_s: Optional[float] = None,
    ) -> int:
        """Admit ``item`` or raise :class:`QueueFullError`; returns depth.

        ``deadline_s`` is relative to now; the entry expires (and will
        never reach a worker) once it elapses.
        """
        if len(self._heap) >= self.max_depth:
            self.purge_expired()
        if len(self._heap) >= self.max_depth:
            self.rejected += 1
            raise QueueFullError(len(self._heap), self.retry_after_hint())
        expires_at = None
        if deadline_s is not None:
            expires_at = self._clock() + deadline_s
        self._sequence += 1
        heapq.heappush(
            self._heap,
            _Entry(priority, self._sequence, item, expires_at),
        )
        self.accepted += 1
        self._available.set()
        return len(self._heap)

    async def get(
        self, *, on_expired: Optional[Callable[[Any, float], None]] = None
    ) -> Tuple[Any, Optional[float]]:
        """Claim the highest-priority live entry: ``(item, expires_at)``.

        Expired entries are skipped and reported through ``on_expired``
        (falling back to the constructor's callback), with how long they
        overstayed their deadline.  Waits until a live entry is
        available.
        """
        while True:
            while self._heap:
                entry = heapq.heappop(self._heap)
                if entry.expires_at is not None:
                    overstay = self._clock() - entry.expires_at
                    if overstay >= 0:
                        self._expire_entry(entry, overstay, on_expired)
                        continue
                if not self._heap:
                    self._available.clear()
                return entry.item, entry.expires_at
            self._available.clear()
            await self._available.wait()

    def remove(self, item: Any) -> bool:
        """Remove one queued ``item`` (identity match); ``True`` if found.

        Used for cancellation: a request abandoned by its client (e.g. a
        TCP disconnect) must stop holding an admission slot.  A linear
        scan is fine — the queue is bounded and cancellation is rare.
        """
        for index, entry in enumerate(self._heap):
            if entry.item is item:
                self._heap[index] = self._heap[-1]
                self._heap.pop()
                heapq.heapify(self._heap)
                if not self._heap:
                    self._available.clear()
                return True
        return False

    def drain(self) -> List[Any]:
        """Remove and return every queued item (used on shutdown)."""
        items = [entry.item for entry in self._heap]
        self._heap.clear()
        self._available.clear()
        return items
