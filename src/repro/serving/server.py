"""Async serving front-end over the network-level optimization engine.

:class:`OptimizationServer` turns :class:`~repro.engine.network`'s
one-shot API into a long-lived service that many concurrent clients can
share:

* requests enter a :class:`~repro.serving.queue.BoundedRequestQueue`
  (per-request priorities and deadlines, reject-with-retry-after when
  the backlog is full);
* a fixed set of asyncio workers claims requests and solves each
  network's *distinct* operators through an event-loop
  :class:`~repro.serving.coalescing.SingleFlight` layered over the
  thread-safe :meth:`~repro.engine.cache.ResultCache.get_or_compute` —
  identical operators requested by concurrent clients are solved exactly
  once, no matter how the requests interleave;
* actual solves run on a bounded thread pool so the event loop stays
  responsive while scipy works;
* every request streams progress events (one per completed operator)
  and ends with a terminal completed/rejected/expired/failed event.

The server also exposes a **solve-count probe**
(:attr:`OptimizationServer.solve_counts`): how many times each cache key
was actually computed.  Tests and the demo use it to verify the
"every duplicate operator solved exactly once" property end to end.
:meth:`OptimizationServer.stats_snapshot` widens the probe into one
JSON-ready payload that also covers the process-global compile cache
(shape-family plan reuse) and the intra-operator solve pool.

A thin TCP transport (:func:`start_tcp_server`) frames the same protocol
as JSON lines over a socket for out-of-process clients.

**Failure handling.**  A long-lived replica must degrade, not die:

* ``ServerConfig.solve_timeout_s`` bounds each request's *primary*
  solve; past the budget the request is re-answered by the configured
  cheaper ``fallback_strategy`` and the response is marked
  ``degraded=True`` (the primary's pool solves keep running in the
  background and still warm the shared cache for the next request);
* a **watchdog** task sweeps in-flight requests every
  ``watchdog_interval_s`` and force-expires any still live past its
  deadline — hung requests (a wedged worker, a stuck solve thread) get
  a terminal :class:`~repro.serving.protocol.ExpiredEvent` instead of
  holding a slot forever (counter ``serving.watchdog_failures``);
* every degradation/recovery increments
  :mod:`repro.reliability.health` counters, surfaced under the
  ``"reliability"`` key of :meth:`OptimizationServer.stats_snapshot`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, AsyncIterator, Dict, List, Mapping, Optional, Tuple, Union

from ..core import solve_pool  # noqa: F401 — registers its stat collector
from ..core.batched import table_cache_stats  # noqa: F401 — collector import
from ..core.cost_model import DEFAULT_COMPILE_CACHE  # noqa: F401 — collector import
from ..core.tensor_spec import ConvSpec
from ..engine.cache import ResultCache, resolve_cache
from ..engine.network import build_network_result, dedup_specs, resolve_network
from ..engine.serialization import spec_shape_key
from ..engine.strategy import SearchStrategy, StrategyResult, get_strategy
from ..machine.spec import MachineSpec
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.export import render_prometheus
from ..obs.trace import activate, current_context, record_span, span
from ..reliability import health
from ..reliability.faults import fault_point
from .coalescing import SingleFlight
from .protocol import (
    AcceptedEvent,
    CompletedEvent,
    ExpiredEvent,
    FailedEvent,
    OperatorEvent,
    OptimizeRequest,
    OptimizeResponse,
    RejectedEvent,
    ServingEvent,
    event_to_dict,
    encode_message,
)
from .queue import BoundedRequestQueue, QueueFullError


class ServerOverloadedError(Exception):
    """Admission failed: the request queue is full.  Retry later."""

    def __init__(self, retry_after_s: float):
        super().__init__(f"server overloaded; retry after {retry_after_s:.2f}s")
        self.retry_after_s = retry_after_s


class DeadlineExpiredError(Exception):
    """The request's deadline passed before its result was ready."""


class RequestFailedError(Exception):
    """The strategy raised while solving the request."""


@dataclass(frozen=True)
class ServerConfig:
    """Tunable knobs of one :class:`OptimizationServer`.

    ``max_queue_depth`` bounds the admission queue (back-pressure beyond
    it); ``workers`` is how many requests are serviced concurrently;
    ``solve_threads`` bounds the thread pool actually running solver
    code (the hard cap on CPU oversubscription no matter how many
    requests are in flight); ``retry_after_s`` seeds the back-off hint
    given to rejected clients.

    ``solve_timeout_s`` is the per-request budget of the *primary*
    strategy: when it is exceeded and ``fallback_strategy`` names a
    (cheaper) registered strategy, the request is re-answered by the
    fallback and the response marked ``degraded`` instead of expiring.
    ``watchdog_interval_s`` is how often the watchdog sweeps in-flight
    requests for ones hung past their deadline.
    """

    max_queue_depth: int = 64
    workers: int = 4
    solve_threads: int = 4
    retry_after_s: float = 0.25
    default_deadline_s: Optional[float] = None
    solve_timeout_s: Optional[float] = None
    fallback_strategy: Optional[str] = None
    watchdog_interval_s: float = 0.1


@dataclass
class ServerStats:
    """Aggregate counters over the server's lifetime.

    All ``operators_*`` figures count *layers* (the unit responses use),
    not distinct shapes: a coalesced shape shared by three layers of one
    request adds three to ``operators_coalesced``.  ``solves`` counts
    actual strategy invocations (distinct shapes computed).
    """

    accepted: int = 0
    rejected: int = 0
    expired: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    operators_served: int = 0
    operators_cached: int = 0
    operators_coalesced: int = 0
    solves: int = 0
    #: Completed via the fallback strategy (primary blew its budget).
    degraded: int = 0
    #: In-flight requests the watchdog force-expired at their deadline.
    watchdog_failed: int = 0


class RequestHandle:
    """One submitted request: its event stream and awaitable result.

    The network and strategy are resolved once at admission (they also
    serve as submit-time validation) and stashed here so the worker does
    not redo the work.
    """

    def __init__(
        self,
        request: OptimizeRequest,
        loop: asyncio.AbstractEventLoop,
        *,
        network_name: str,
        specs: List[ConvSpec],
        strategy: SearchStrategy,
    ):
        self.request = request
        self.network_name = network_name
        self.specs = specs
        self.strategy = strategy
        self.submitted_at = time.perf_counter()
        #: Telemetry identity, filled in by ``submit()``: the trace this
        #: request belongs to (from the wire, the submitter's ambient
        #: span, or fresh), the pre-allocated ``serving.request`` span id
        #: children parent to, and the tenant the latency is attributed to.
        self.trace_id: Optional[str] = None
        self.parent_span_id: Optional[str] = None
        self.request_span_id: Optional[str] = None
        self.client_id: Optional[str] = None
        # ``time.monotonic()`` moment this request must be terminal by,
        # stamped when a worker claims it; the watchdog enforces it.
        self.expires_at: Optional[float] = None
        self._events: "asyncio.Queue[ServingEvent]" = asyncio.Queue()
        self._future: "asyncio.Future[OptimizeResponse]" = loop.create_future()
        # Set by OptimizationServer.cancel(): a mid-flight worker races
        # this against its solve and releases the slot when it fires.
        self._cancel_event = asyncio.Event()

    @property
    def cancelled(self) -> bool:
        """Whether the request was cancelled (client abandoned it)."""
        return self._cancel_event.is_set()

    @property
    def request_id(self) -> str:
        return self.request.request_id

    def _emit(self, event: ServingEvent) -> None:
        self._events.put_nowait(event)

    def _resolve(self, response: OptimizeResponse) -> None:
        if not self._future.done():
            self._future.set_result(response)

    def _fail(self, error: BaseException) -> None:
        if not self._future.done():
            self._future.set_exception(error)
            # Consumers that only read the event stream (the TCP
            # transport, rejected submissions) never await the future;
            # retrieve the exception once so asyncio does not log it at
            # GC time.  `await result()` still raises.
            self._future.exception()

    async def result(self) -> OptimizeResponse:
        """Await the terminal response (raises on expiry/failure)."""
        return await self._future

    async def events(self) -> AsyncIterator[ServingEvent]:
        """Stream this request's events until (and including) the terminal one."""
        while True:
            event = await self._events.get()
            yield event
            if event.terminal:
                return


class OptimizationServer:
    """Queued, cache-coalescing async service over one machine description.

    Typical in-process use::

        server = OptimizationServer(machine, cache=ResultCache(path))
        async with server:
            handle = server.submit(OptimizeRequest("resnet18"))
            async for event in handle.events():
                ...                       # streaming per-operator progress
            response = await handle.result()

    ``cache`` takes anything :func:`~repro.engine.cache.resolve_cache`
    accepts: a :class:`ResultCache`, a directory path (a ``"chunked:"``
    prefix or an existing chunked layout selects the chunked backend),
    or a disk store instance — which is how replicas of a fleet mount
    one merged warm fabric.  ``None`` keeps the historical default of a
    fresh in-memory cache.
    """

    def __init__(
        self,
        machine: MachineSpec,
        strategy: Union[str, SearchStrategy] = "mopt",
        *,
        strategy_options: Optional[Mapping[str, Any]] = None,
        cache: Union[None, str, Path, ResultCache, Any] = None,
        config: Optional[ServerConfig] = None,
    ):
        self.machine = machine
        self.config = config or ServerConfig()
        self.default_strategy_options: Dict[str, Any] = dict(strategy_options or {})
        if isinstance(strategy, str):
            self.default_strategy_name = strategy
            # Fail fast on unknown names/options, like NetworkOptimizer does.
            self.default_strategy: SearchStrategy = get_strategy(
                strategy, **self.default_strategy_options
            )
        else:
            # A ready instance (the repro.api.Session by-object path).
            if self.default_strategy_options:
                raise ValueError(
                    "strategy_options only apply to by-name strategies; "
                    "configure the instance instead"
                )
            self.default_strategy = strategy
            self.default_strategy_name = strategy.name
        # Resolve the degraded-path fallback eagerly: a typo'd name must
        # fail at construction, not mid-incident.
        self._fallback_strategy: Optional[SearchStrategy] = (
            get_strategy(self.config.fallback_strategy)
            if self.config.fallback_strategy is not None
            else None
        )
        resolved_cache = resolve_cache(cache)
        # resolve_cache(None) hands back a fresh in-memory cache, the
        # server's historical default; caching cannot be disabled here
        # (single-flight coalescing is built on it), so False is not
        # accepted by the signature.
        assert resolved_cache is not None
        self.cache = resolved_cache
        self.stats = ServerStats()
        #: Cache key -> number of times the strategy actually solved it.
        #: With single-flight coalescing this stays at 1 per key no
        #: matter how many concurrent requests contain the operator.
        self.solve_counts: Dict[str, int] = {}
        # Solve counters are bumped from pool threads; a bare += on the
        # stats dataclass is a lost-update race across distinct keys.
        self._solve_lock = threading.Lock()
        self._queue: Optional[BoundedRequestQueue] = None
        self._singleflight = SingleFlight()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._workers: List["asyncio.Task[None]"] = []
        self._watchdog: Optional["asyncio.Task[None]"] = None
        # Keyed by handle identity, NOT by request_id: ids are chosen by
        # clients (unique per client process, not across processes), so
        # two TCP clients can legitimately both send "req-1".
        self._handles: Dict[int, RequestHandle] = {}
        self._running = False
        self._draining = False
        # (shape key, strategy) -> cache key.  Strategies are frozen
        # dataclasses comparing by value, so value-equal per-request
        # strategies share entries; computing a cache key hashes the full
        # machine description and is too slow for the warm hot path.
        self._key_memo: Dict[Tuple[str, Any], str] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spin up the queue, the solve pool and the worker tasks."""
        if self._running:
            return
        self._draining = False  # a restarted server accepts again
        self._queue = BoundedRequestQueue(
            self.config.max_queue_depth,
            retry_after_s=self.config.retry_after_s,
            on_expired=self._expire_queued,
        )
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.solve_threads,
            thread_name_prefix="repro-serving",
        )
        self._workers = [
            asyncio.ensure_future(self._worker_loop())
            for _ in range(self.config.workers)
        ]
        self._watchdog = asyncio.ensure_future(self._watchdog_loop())
        self._running = True
        # Export the request-lifecycle counters through the unified
        # registry so the Prometheus rendering (stats verb, `repro
        # stats --prometheus`) carries them.  Last started server wins
        # the name — one server per process is the serving deployment
        # shape; embedded test servers merely overwrite each other.
        obs_metrics.REGISTRY.register_collector("serving", self._lifecycle_stats)

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Gracefully wind down: stop admissions, finish accepted requests.

        New submissions are refused from the moment this is called;
        everything already admitted (queued or mid-flight) is allowed to
        run to its terminal event, for up to ``timeout`` seconds
        (``None`` waits indefinitely).  Returns ``True`` when every
        accepted request reached a terminal state — the caller can then
        :meth:`stop` without failing anyone — and ``False`` on timeout,
        in which case :meth:`stop` fails the stragglers as before.
        """
        if not self._running:
            return True
        self._draining = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._handles:
            if deadline is not None and time.monotonic() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    async def stop(
        self, *, drain: bool = False, drain_timeout: Optional[float] = None
    ) -> None:
        """Stop workers, fail queued requests, shut the pool down.

        With ``drain=True`` the server first refuses new admissions and
        waits (up to ``drain_timeout`` seconds) for accepted requests to
        finish; only requests still unfinished after the drain window
        are failed.
        """
        if not self._running:
            return
        if drain:
            await self.drain(drain_timeout)
        self._running = False
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._watchdog is not None:
            self._watchdog.cancel()
            await asyncio.gather(self._watchdog, return_exceptions=True)
            self._watchdog = None
        if self._queue is not None:
            self._queue.drain()
        # Fail every non-terminal request — queued or mid-flight when the
        # workers were cancelled — so no client awaits a result forever.
        for handle in list(self._handles.values()):
            error = RequestFailedError("server stopped")
            handle._fail(error)
            handle._emit(
                FailedEvent(request_id=handle.request_id, error=str(error))
            )
        self._handles.clear()
        if self._pool is not None:
            pool, self._pool = self._pool, None
            # Join the pool off-loop: cancel_futures only stops *queued*
            # solves, so waiting for running ones must not freeze every
            # other coroutine (they can take seconds to minutes).
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: pool.shutdown(wait=True, cancel_futures=True)
            )

    async def __aenter__(self) -> "OptimizationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.stop()

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet claimed by a worker."""
        return 0 if self._queue is None else self._queue.depth

    @property
    def active_requests(self) -> Tuple[str, ...]:
        """Ids of requests admitted but not yet terminal (queued or solving)."""
        return tuple(h.request_id for h in self._handles.values())

    def duplicate_solves(self) -> int:
        """How many solves were redundant (same key computed again)."""
        return sum(count - 1 for count in self.solve_counts.values() if count > 1)

    def _lifecycle_stats(self) -> Dict[str, Any]:
        """Numeric lifecycle counters (the ``"serving"`` collector body)."""
        payload = dataclasses.asdict(self.stats)
        payload["queue_depth"] = self.queue_depth
        payload["active_requests"] = len(self._handles)
        payload["duplicate_solves"] = self.duplicate_solves()
        return payload

    def stats_snapshot(self) -> Dict[str, Any]:
        """One JSON-ready dict of every observable server counter.

        Besides the request/solve lifecycle counters this folds in the
        process-global compile cache (shape-family plan sharing) and the
        intra-operator solve pool, so an operator probing a long-lived
        server can see plan-reuse hit rates and pool fan-out without
        reaching into module globals.  Since the telemetry PR it also
        carries the per-request-class latency histograms
        (``latency_s``), terminal counts by class
        (``requests_by_class``) and per-client request attribution
        (``clients``) — the payload the ``stats`` TCP verb returns and
        ``repro top`` renders.
        """
        payload = self._lifecycle_stats()
        registry = obs_metrics.REGISTRY
        payload["latency_s"] = registry.histograms_with_prefix(
            "serving.latency_s."
        )
        payload["requests_by_class"] = registry.counters_with_prefix(
            "serving.requests."
        )
        payload["clients"] = registry.counters_with_prefix(
            "serving.client_requests."
        )
        # The subsystem blocks are a view over the unified metrics
        # registry (their collectors registered at import); the payload
        # shape is unchanged from the pre-registry probes.
        snap = obs_metrics.snapshot()
        payload["compile_cache"] = snap["compile_cache"]
        payload["batched_table_cache"] = snap["batched_table_cache"]
        payload["solve_pool"] = snap["solve_pool"]
        payload["reliability"] = {
            **snap["reliability"],
            "cache": self.cache.reliability_stats(),
        }
        return payload

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(
        self, request: OptimizeRequest, *, client_id: Optional[str] = None
    ) -> RequestHandle:
        """Admit ``request`` or raise :class:`ServerOverloadedError`.

        Must be called from the server's event loop.  The returned
        handle immediately carries an :class:`AcceptedEvent`; progress
        and terminal events follow as the request is serviced.

        ``client_id`` is a transport-supplied fallback tenant label
        (the TCP handler passes the peer address); the request's own
        ``client_id`` wins when set.
        """
        if not self._running or self._queue is None:
            raise RuntimeError("server is not running (use `async with server:`)")
        if self._draining:
            raise RuntimeError("server is draining; not accepting new requests")
        # Resolve eagerly: bad networks/strategies fail at submission and
        # the worker reuses the resolution instead of redoing it.
        network_name, specs = resolve_network(request.network, batch=request.batch)
        strategy = self._strategy_for(request)
        loop = asyncio.get_running_loop()
        handle = RequestHandle(
            request, loop,
            network_name=network_name, specs=specs, strategy=strategy,
        )
        handle.client_id = request.client_id or client_id
        if obs_trace.is_enabled():
            # Join the caller's trace: wire fields first (a traced
            # remote client), the submitter's ambient span second (the
            # in-process client), a fresh trace last.  The
            # ``serving.request`` span id is allocated NOW so children
            # recorded before the terminal event parent to it.
            if request.trace_id:
                handle.trace_id = request.trace_id
                handle.parent_span_id = request.parent_span
            else:
                ambient = current_context()
                if ambient is not None:
                    handle.trace_id, handle.parent_span_id = ambient
                else:
                    handle.trace_id = obs_trace.new_span_id()
            handle.request_span_id = obs_trace.new_span_id()
        deadline = (
            request.deadline_s
            if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        try:
            depth = self._queue.put_nowait(
                handle, priority=request.priority, deadline_s=deadline
            )
        except QueueFullError as error:
            self.stats.rejected += 1
            self._observe_terminal(handle, "rejected")
            handle._emit(
                RejectedEvent(
                    request_id=request.request_id,
                    reason="queue full",
                    retry_after_s=error.retry_after_s,
                )
            )
            overloaded = ServerOverloadedError(error.retry_after_s)
            handle._fail(overloaded)
            raise overloaded from None
        self.stats.accepted += 1
        self._handles[id(handle)] = handle
        # Enqueue-time saturation gauges: depth is what admission just
        # saw; backlog counts everything admitted but not yet terminal.
        registry = obs_metrics.REGISTRY
        registry.gauge("serving.queue_depth").set(depth)
        registry.gauge("serving.backlog").set(len(self._handles))
        handle._emit(
            AcceptedEvent(request_id=request.request_id, queue_depth=depth)
        )
        return handle

    def _observe_terminal(self, handle: RequestHandle, request_class: str) -> float:
        """Record one request reaching a terminal state.

        Feeds the per-class latency histogram, the per-class and
        per-client counters, refreshes the saturation gauges, and — when
        the request is traced — synthesizes its ``serving.request`` span
        covering the full submit-to-terminal wall (a live ``with`` block
        cannot: the region starts in ``submit()``'s task and ends in a
        worker's).  Returns the request's wall seconds.
        """
        latency_s = time.perf_counter() - handle.submitted_at
        registry = obs_metrics.REGISTRY
        registry.histogram(f"serving.latency_s.{request_class}").observe(latency_s)
        registry.counter(f"serving.requests.{request_class}").inc()
        if handle.client_id:
            registry.counter(
                f"serving.client_requests.{handle.client_id}"
            ).inc()
        registry.gauge("serving.queue_depth").set(self.queue_depth)
        registry.gauge("serving.backlog").set(len(self._handles))
        if handle.trace_id is not None:
            record_span(
                "serving.request",
                latency_s,
                trace_id=handle.trace_id,
                span_id=handle.request_span_id,
                parent_id=handle.parent_span_id,
                request_id=handle.request_id,
                network=handle.network_name,
                request_class=request_class,
                client=handle.client_id or "local",
            )
        return latency_s

    def cancel(
        self, handle: RequestHandle, reason: str = "cancelled by client"
    ) -> bool:
        """Cancel an admitted request (client gone); ``True`` if it was live.

        A still-queued request is removed from the queue immediately —
        an abandoned request must not hold an admission slot.  A request
        already claimed by a worker has its wait cancelled, releasing
        the worker; solves already running on the thread pool finish in
        the background and still populate the shared cache (they may be
        feeding coalesced siblings from other clients).
        """
        if self._handles.pop(id(handle), None) is None:
            return False  # already terminal (or never admitted)
        self.stats.cancelled += 1
        self._observe_terminal(handle, "cancelled")
        if self._queue is not None:
            self._queue.remove(handle)
        error = RequestFailedError(f"request {handle.request_id} {reason}")
        handle._emit(
            FailedEvent(request_id=handle.request_id, error=str(error))
        )
        handle._fail(error)
        handle._cancel_event.set()  # frees a worker mid-flight
        return True

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    async def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            handle, expires_at = await self._queue.get()
            handle.expires_at = expires_at  # watchdog enforcement point
            try:
                await self._process(handle, expires_at)
            except asyncio.CancelledError:
                raise
            except BaseException as error:  # pragma: no cover - defensive
                self._finish_failed(handle, error)

    async def _watchdog_loop(self) -> None:
        """Fail in-flight requests hung past their deadline.

        The normal deadline path races the solve against the remaining
        budget inside :meth:`_process`; the watchdog is the backstop for
        requests whose worker never reaches (or never returns from) that
        race — a wedged coroutine, a stuck solve thread.  It is the only
        component that can terminate such a request, because it runs
        outside the per-request control flow.
        """
        while True:
            await asyncio.sleep(self.config.watchdog_interval_s)
            fault_point("serving.watchdog_tick")
            now = time.monotonic()
            for handle in list(self._handles.values()):
                if handle.expires_at is not None and now > handle.expires_at:
                    self._watchdog_expire(handle)

    def _watchdog_expire(self, handle: RequestHandle) -> None:
        if self._handles.pop(id(handle), None) is None:
            return  # reached a terminal state while we were sweeping
        self.stats.expired += 1
        self.stats.watchdog_failed += 1
        health.incr("serving.watchdog_failures")
        self._observe_terminal(handle, "expired")
        waited = time.perf_counter() - handle.submitted_at
        deadline = (
            handle.request.deadline_s or self.config.default_deadline_s or 0.0
        )
        handle._emit(
            ExpiredEvent(
                request_id=handle.request_id,
                deadline_s=deadline,
                waited_s=waited,
            )
        )
        handle._fail(
            DeadlineExpiredError(
                f"request {handle.request_id} hung in flight; watchdog "
                f"expired it after {waited * 1e3:.1f} ms"
            )
        )
        # Release the worker if it is still racing solve vs. cancel; the
        # handle is already out of _handles so the worker stays quiet.
        handle._cancel_event.set()

    def _expire_queued(self, handle: RequestHandle, overstay: float) -> None:
        """Queue callback: a request's deadline passed while it waited."""
        self.stats.expired += 1
        self._observe_terminal(handle, "expired")
        waited = time.perf_counter() - handle.submitted_at
        deadline = handle.request.deadline_s or self.config.default_deadline_s or 0.0
        handle._emit(
            ExpiredEvent(
                request_id=handle.request_id,
                deadline_s=deadline,
                waited_s=waited,
            )
        )
        handle._fail(
            DeadlineExpiredError(
                f"request {handle.request_id} expired after waiting "
                f"{waited * 1e3:.1f} ms (deadline {deadline * 1e3:.1f} ms)"
            )
        )
        self._handles.pop(id(handle), None)

    async def _process(
        self, handle: RequestHandle, expires_at: Optional[float]
    ) -> None:
        # The `serving.request` span covers submit -> terminal, so it is
        # synthesized by ``_observe_terminal`` with exact duration; here
        # the worker records the queue wait it just ended and adopts the
        # pre-allocated span as ancestry so every child joins the trace.
        queued_s = time.perf_counter() - handle.submitted_at
        ctx: Optional[obs_trace.TraceContext] = None
        if handle.trace_id is not None and handle.request_span_id is not None:
            ctx = (handle.trace_id, handle.request_span_id)
            record_span(
                "serving.queue_wait",
                queued_s,
                trace_id=handle.trace_id,
                parent_id=handle.request_span_id,
                request_id=handle.request_id,
                client=handle.client_id or "local",
            )
        with activate(ctx):
            await self._process_request(handle, expires_at, queued_s)

    async def _process_request(
        self, handle: RequestHandle, expires_at: Optional[float], queued_s: float
    ) -> None:
        request = handle.request
        service_start = time.perf_counter()
        strategy = handle.strategy
        network_name, specs = handle.network_name, handle.specs
        distinct = dedup_specs(specs)
        keys = {
            shape_key: self._cache_key(shape_key, spec, strategy)
            for shape_key, spec in distinct.items()
        }
        coalesced_ops = 0
        if handle.cancelled:
            # Cancelled between queue claim and processing: cancel()
            # already emitted the terminal event and failed the future.
            return
        degraded = False
        try:
            remaining = None
            if expires_at is not None:
                remaining = expires_at - time.monotonic()
                if remaining <= 0:
                    raise asyncio.TimeoutError
            # The primary solve runs under the tighter of the deadline
            # and the per-request solve budget; overrunning the budget
            # degrades to the fallback strategy instead of expiring.
            budget = self.config.solve_timeout_s
            budget_bound = (
                budget is not None
                and self._fallback_strategy is not None
                and strategy.name != self._fallback_strategy.name
                and (remaining is None or budget < remaining)
            )
            timeout = budget if budget_bound else remaining
            solve = asyncio.ensure_future(
                self._solve_distinct(handle, strategy, specs, distinct, keys)
            )
            watch_cancel = asyncio.ensure_future(handle._cancel_event.wait())
            try:
                done, _ = await asyncio.wait(
                    {solve, watch_cancel},
                    timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if solve not in done and watch_cancel not in done and budget_bound:
                    # The primary blew its solve budget: abandon the wait
                    # (its pool solves keep running and still warm the
                    # shared cache) and answer with the cheaper fallback
                    # within whatever deadline budget remains.
                    solve.cancel()
                    await asyncio.gather(solve, return_exceptions=True)
                    degraded = True
                    self.stats.degraded += 1
                    health.incr("serving.degraded")
                    assert self._fallback_strategy is not None
                    strategy = self._fallback_strategy
                    fallback_keys = {
                        shape_key: self._cache_key(shape_key, spec, strategy)
                        for shape_key, spec in distinct.items()
                    }
                    if expires_at is not None:
                        remaining = expires_at - time.monotonic()
                        if remaining <= 0:
                            raise asyncio.TimeoutError
                    solve = asyncio.ensure_future(
                        self._solve_distinct(
                            handle, strategy, specs, distinct, fallback_keys
                        )
                    )
                    done, _ = await asyncio.wait(
                        {solve, watch_cancel},
                        timeout=remaining,
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                if solve not in done:
                    # Deadline or client cancellation won the race: stop
                    # waiting and release this worker.  Underlying pool
                    # solves keep running (they may feed coalesced
                    # siblings) and still land in the shared cache.
                    solve.cancel()
                    await asyncio.gather(solve, return_exceptions=True)
                    if watch_cancel in done:
                        return  # cancel()/watchdog already finished it
                    raise asyncio.TimeoutError
                solved, cached_keys, coalesced_ops = solve.result()
            except asyncio.CancelledError:
                # Worker cancelled (server stopping): don't orphan the
                # solve task, as wait_for used to guarantee.
                solve.cancel()
                raise
            finally:
                watch_cancel.cancel()
        except asyncio.TimeoutError:
            if self._handles.pop(id(handle), None) is None:
                return  # the watchdog (or cancel) beat us to the expiry
            self.stats.expired += 1
            self._observe_terminal(handle, "expired")
            waited = time.perf_counter() - handle.submitted_at
            deadline = (
                request.deadline_s or self.config.default_deadline_s or 0.0
            )
            handle._emit(
                ExpiredEvent(
                    request_id=handle.request_id,
                    deadline_s=deadline,
                    waited_s=waited,
                )
            )
            handle._fail(
                DeadlineExpiredError(
                    f"request {handle.request_id} expired mid-flight after "
                    f"{waited * 1e3:.1f} ms"
                )
            )
            return
        except asyncio.CancelledError:
            raise
        except BaseException as error:
            self._finish_failed(handle, error)
            return

        if self._handles.pop(id(handle), None) is None:
            return  # watchdog-expired or cancelled while we finished
        # Explicitly timed like the coalesce phase: warm-request hot
        # path, no child spans under it.
        respond_start = time.perf_counter()
        network_result = build_network_result(
            network=network_name,
            machine_name=self.machine.name,
            strategy=strategy.name,
            specs=specs,
            solved=solved,
            cached_keys=cached_keys,
            wall_seconds=time.perf_counter() - service_start,
        )
        response = OptimizeResponse.from_network_result(
            network_result,
            request_id=request.request_id,
            coalesced=coalesced_ops,
            queued_s=queued_s,
            service_s=time.perf_counter() - service_start,
            degraded=degraded,
        )
        self.stats.completed += 1
        self.stats.operators_served += len(specs)
        handle._resolve(response)
        handle._emit(
            CompletedEvent(request_id=request.request_id, response=response)
        )
        record_span(
            "serving.respond",
            time.perf_counter() - respond_start,
            trace_id=handle.trace_id,
            parent_id=handle.request_span_id,
            request_id=handle.request_id,
        )
        # Request-class taxonomy: the degraded path wins (it answered),
        # coalescing beats plain cold (some solves were shared), a fully
        # cache-answered request is warm, everything else is cold.
        if degraded:
            request_class = "degraded"
        elif coalesced_ops > 0:
            request_class = "coalesced"
        elif len(cached_keys) == len(distinct):
            request_class = "warm"
        else:
            request_class = "cold"
        self._observe_terminal(handle, request_class)

    def _finish_failed(self, handle: RequestHandle, error: BaseException) -> None:
        if id(handle) not in self._handles:
            return  # already terminal (watchdog expiry or cancellation)
        self.stats.failed += 1
        self._observe_terminal(handle, "failed")
        failure = RequestFailedError(
            f"request {handle.request_id} failed: {error}"
        )
        failure.__cause__ = error
        handle._emit(
            FailedEvent(request_id=handle.request_id, error=str(error))
        )
        handle._fail(failure)
        self._handles.pop(id(handle), None)

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    async def _solve_distinct(
        self,
        handle: RequestHandle,
        strategy: SearchStrategy,
        specs: List[ConvSpec],
        distinct: Mapping[str, ConvSpec],
        keys: Mapping[str, str],
    ) -> Tuple[Dict[str, StrategyResult], set, int]:
        """Solve every distinct shape, streaming per-layer progress events.

        Returns ``(shape_key -> result, cached shape keys, coalesced
        operator count)``.  All distinct shapes are launched at once:
        batched cache lookups first, then one single-flight solve per
        miss on the shared thread pool.
        """
        loop = asyncio.get_running_loop()
        assert self._pool is not None

        solved: Dict[str, StrategyResult] = {}
        cached_keys: set = set()
        coalesced_ops = 0
        misses: List[str] = []
        # Layers grouped by shape so each shape's completion can emit one
        # event per layer that shares it.
        layers_by_shape: Dict[str, List[Tuple[int, ConvSpec]]] = {}
        for index, spec in enumerate(specs):
            layers_by_shape.setdefault(spec_shape_key(spec), []).append(
                (index, spec)
            )
        total = len(specs)

        def emit_layers(shape_key: str, result: StrategyResult, cached: bool, coalesced: bool) -> None:
            for index, spec in layers_by_shape[shape_key]:
                handle._emit(
                    OperatorEvent(
                        request_id=handle.request_id,
                        operator=spec.name,
                        index=index,
                        total=total,
                        gflops=result.gflops,
                        time_seconds=result.time_seconds,
                        cached=cached,
                        coalesced=coalesced,
                    )
                )

        # The coalesce phase: resolve every distinct shape against the
        # cache tiers and partition into inline hits vs. misses.  Timed
        # explicitly and recorded via the cheaper ``record_span`` (no
        # contextvar juggling) — this is the warm-request hot path, and
        # the region opens no child spans that would need the ancestry.
        coalesce_start = time.perf_counter()
        # Batched lookup for every distinct key: a synchronous pass
        # over the memory tier first (no IO — this is what keeps warm
        # requests in the low-millisecond range), then one
        # thread-pool trip to the disk tier for whatever is left.
        cache_hits = self.cache.get_many(list(keys.values()), memory_only=True)
        disk_keys = [key for key, hit in cache_hits.items() if hit is None]
        if disk_keys and self.cache.disk is not None:
            cache_hits.update(
                await loop.run_in_executor(
                    self._pool,
                    lambda: self.cache.get_many(disk_keys, record_misses=False),
                )
            )
        # Cache hits complete inline — no tasks, no executor, no loop
        # round-trips; a fully warm request is a synchronous sweep.
        for shape_key in distinct:
            hit = cache_hits.get(keys[shape_key])
            if hit is not None:
                self.stats.operators_cached += len(layers_by_shape[shape_key])
                solved[shape_key] = hit
                cached_keys.add(shape_key)
                emit_layers(shape_key, hit, True, False)
            else:
                misses.append(shape_key)
        record_span(
            "serving.coalesce",
            time.perf_counter() - coalesce_start,
            trace_id=handle.trace_id,
            parent_id=handle.request_span_id,
            request_id=handle.request_id,
            distinct=len(distinct),
        )
        if not misses:
            return solved, cached_keys, coalesced_ops

        with span(
            "serving.solve", request_id=handle.request_id, misses=len(misses)
        ):
            # Solver spans run on pool threads, which do not inherit this
            # task's contextvars — ship the in-span ancestry explicitly.
            solve_ctx = current_context()

            async def solve_shape(shape_key: str) -> Tuple[str, StrategyResult, bool]:
                cache_key = keys[shape_key]
                was_inflight = self._singleflight.is_inflight(cache_key)
                if was_inflight:
                    self.stats.operators_coalesced += len(layers_by_shape[shape_key])

                def compute() -> StrategyResult:
                    with self._solve_lock:
                        self.solve_counts[cache_key] = (
                            self.solve_counts.get(cache_key, 0) + 1
                        )
                        self.stats.solves += 1
                    # Chaos hook: stall/raise one strategy's solves (keyed by
                    # strategy name so a fallback solve can stay healthy).
                    fault_point("serving.solve", key=strategy.name)
                    return strategy.search(distinct[shape_key], self.machine)

                def get_or_compute() -> StrategyResult:
                    with activate(solve_ctx):
                        return self.cache.get_or_compute(cache_key, compute)

                result = await self._singleflight.run(
                    cache_key,
                    lambda: loop.run_in_executor(self._pool, get_or_compute),
                )
                return shape_key, result, was_inflight

            tasks = [
                asyncio.ensure_future(solve_shape(shape_key)) for shape_key in misses
            ]
            try:
                for finished in asyncio.as_completed(tasks):
                    shape_key, result, coalesced = await finished
                    solved[shape_key] = result
                    if coalesced:
                        coalesced_ops += len(layers_by_shape[shape_key])
                    emit_layers(shape_key, result, False, coalesced)
            except BaseException:
                for task in tasks:
                    task.cancel()
                raise
        return solved, cached_keys, coalesced_ops

    # ------------------------------------------------------------------
    def _cache_key(
        self, shape_key: str, spec: ConvSpec, strategy: SearchStrategy
    ) -> str:
        """Memoized :meth:`ResultCache.key_for` (unchanged key values)."""
        try:
            memo_key: Optional[Tuple[str, Any]] = (shape_key, strategy)
            cached = self._key_memo.get(memo_key)
        except TypeError:  # unhashable custom strategy: compute every time
            memo_key = None
            cached = None
        if cached is not None:
            return cached
        key = self.cache.key_for(spec, self.machine, strategy)
        if memo_key is not None:
            if len(self._key_memo) > 4096:
                self._key_memo.clear()
            self._key_memo[memo_key] = key
        return key

    def _strategy_for(self, request: OptimizeRequest) -> SearchStrategy:
        """The strategy instance answering ``request`` (default or override)."""
        if request.strategy is None and not request.strategy_options:
            return self.default_strategy
        name = request.strategy or self.default_strategy_name
        options = dict(request.strategy_options)
        if not options and name == self.default_strategy_name:
            options = self.default_strategy_options
        return get_strategy(name, **options)


# ----------------------------------------------------------------------
# TCP transport: the same protocol as JSON lines over a socket
# ----------------------------------------------------------------------
async def _serve_request(
    server: OptimizationServer,
    writer: asyncio.StreamWriter,
    write_lock: asyncio.Lock,
    payload: Mapping[str, Any],
) -> None:
    """Service one decoded request line, streaming its events back.

    A client that disconnects mid-stream has abandoned its request: the
    connection error (or the connection handler cancelling this task) is
    converted into :meth:`OptimizationServer.cancel`, so the request
    stops holding a queue slot or a worker.  Solves already running on
    the pool finish in the background and still fill the shared cache.
    """
    submitted: List[RequestHandle] = []
    try:
        await _serve_request_inner(server, writer, write_lock, payload, submitted)
    except (ConnectionResetError, BrokenPipeError, OSError):
        for handle in submitted:
            server.cancel(handle, reason="abandoned: client disconnected")
    except asyncio.CancelledError:
        for handle in submitted:
            server.cancel(handle, reason="abandoned: client disconnected")
        raise


async def _serve_request_inner(
    server: OptimizationServer,
    writer: asyncio.StreamWriter,
    write_lock: asyncio.Lock,
    payload: Mapping[str, Any],
    submitted: List[RequestHandle],
) -> None:
    async def send(event: ServingEvent) -> None:
        async with write_lock:
            writer.write(encode_message(event_to_dict(event)))
            await writer.drain()

    try:
        request = OptimizeRequest.from_dict(payload)
    except (KeyError, ValueError, TypeError) as error:
        async with write_lock:
            writer.write(
                encode_message(
                    event_to_dict(
                        FailedEvent(
                            request_id=str(payload.get("request_id", "?")),
                            error=f"bad request: {error}",
                        )
                    )
                )
            )
            await writer.drain()
        return
    # Attribute telemetry to the TCP peer unless the client named itself.
    peer = writer.get_extra_info("peername")
    peer_id = f"{peer[0]}:{peer[1]}" if isinstance(peer, tuple) and len(peer) >= 2 else None
    try:
        handle = server.submit(request, client_id=peer_id)
        submitted.append(handle)
    except ServerOverloadedError as error:
        await send(
            RejectedEvent(
                request_id=request.request_id,
                reason="queue full",
                retry_after_s=error.retry_after_s,
            )
        )
        return
    except (ValueError, KeyError, TypeError, RuntimeError) as error:
        # Unknown network/strategy (KeyError), empty network (ValueError),
        # bad strategy options / field types (TypeError) or a server that
        # stopped while the connection stayed open (RuntimeError): the
        # client must still get a terminal event, never a silent hang.
        await send(
            FailedEvent(request_id=request.request_id, error=str(error))
        )
        return
    async for event in handle.events():
        await send(event)


async def _serve_stats(
    server: OptimizationServer,
    writer: asyncio.StreamWriter,
    write_lock: asyncio.Lock,
    payload: Mapping[str, Any],
) -> None:
    """Answer one ``stats`` verb line with a single reply frame.

    ``{"verb": "stats", "request_id": ..., "format": "json"|"prometheus"}``
    gets back ``{"type": "stats", "request_id": ..., "format": ...}``
    carrying either the raw :meth:`OptimizationServer.stats_snapshot`
    (json) or the process-wide metrics snapshot rendered as Prometheus
    text exposition.  Errors come back as a ``FailedEvent`` frame so a
    confused client is never left hanging.
    """
    request_id = str(payload.get("request_id", "stats"))
    fmt = str(payload.get("format", "json"))
    try:
        reply: Dict[str, Any] = {
            "type": "stats",
            "request_id": request_id,
            "format": fmt,
        }
        if fmt == "prometheus":
            reply["prometheus"] = render_prometheus(obs_metrics.snapshot())
        elif fmt == "json":
            reply["stats"] = server.stats_snapshot()
        else:
            raise ValueError(f"unknown stats format: {fmt!r}")
    except Exception as error:  # pragma: no cover - defensive
        async with write_lock:
            writer.write(
                encode_message(
                    event_to_dict(
                        FailedEvent(request_id=request_id, error=str(error))
                    )
                )
            )
            await writer.drain()
        return
    async with write_lock:
        writer.write(encode_message(reply))
        await writer.drain()


async def _handle_connection(
    server: OptimizationServer,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """One client connection: JSON-lines requests in, event streams out."""
    write_lock = asyncio.Lock()
    pending: List["asyncio.Task[None]"] = []
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line.decode("utf-8"))
            except ValueError:
                continue
            if payload.get("verb") == "stats":
                pending.append(
                    asyncio.ensure_future(
                        _serve_stats(server, writer, write_lock, payload)
                    )
                )
                pending = [task for task in pending if not task.done()]
                continue
            pending.append(
                asyncio.ensure_future(
                    _serve_request(server, writer, write_lock, payload)
                )
            )
            pending = [task for task in pending if not task.done()]
        # EOF: the client closed its connection.  Anything still pending
        # was abandoned mid-stream — the `finally` below cancels those
        # serve tasks, which propagates into server-side request
        # cancellation so no abandoned request holds a queue slot.
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        for task in pending:
            task.cancel()
        if pending:
            # Let the cancelled tasks run their cancellation handlers
            # (server-side request cancellation) before closing up.
            await asyncio.gather(*pending, return_exceptions=True)
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        except asyncio.CancelledError:
            # The listener was closed while this handler was draining
            # its writer; the task is ending either way — stay quiet.
            pass


async def start_tcp_server(
    server: OptimizationServer, host: str = "127.0.0.1", port: int = 8763
) -> asyncio.AbstractServer:
    """Expose ``server`` over TCP (JSON-lines framing of the protocol).

    The optimization server must already be started.  Returns the
    asyncio server; close it with ``tcp.close(); await
    tcp.wait_closed()``.  ``port=0`` binds an ephemeral port (tests).
    """
    return await asyncio.start_server(
        lambda reader, writer: _handle_connection(server, reader, writer),
        host,
        port,
    )
