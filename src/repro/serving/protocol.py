"""Wire protocol of the optimization service: events and responses.

Everything here is plain data with explicit ``to_dict``/``from_dict``
converters and a JSON-lines framing (:func:`encode_message` /
:func:`decode_message`), so the same messages flow unchanged through the
in-process API, the TCP transport and the tests.  The request type is
the API-wide :class:`repro.api.types.OptimizeRequest` (re-exported here
for compatibility) and :class:`OptimizeResponse` is a thin wire
projection of the engine's :class:`~repro.engine.network.NetworkResult`
— the serving layer encodes the shared types rather than defining a
parallel hierarchy.

The streaming shape of one request's lifetime is::

    -> OptimizeRequest
    <- AcceptedEvent          (queued; position and depth at admission)
    <- OperatorEvent * N      (one per layer, as each operator completes)
    <- CompletedEvent         (terminal: aggregates + per-layer figures)

or a terminal :class:`RejectedEvent` (back-pressure, with a
``retry_after_s`` hint), :class:`ExpiredEvent` (deadline passed before
completion) or :class:`FailedEvent` (strategy error).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Union

from ..api.types import OptimizeRequest, next_request_id
from ..engine.network import NetworkResult

__all__ = [
    "AcceptedEvent",
    "CompletedEvent",
    "ExpiredEvent",
    "FailedEvent",
    "OperatorEvent",
    "OperatorFigure",
    "OptimizeRequest",
    "OptimizeResponse",
    "RejectedEvent",
    "ServingEvent",
    "collect_operator_events",
    "decode_message",
    "encode_message",
    "event_from_dict",
    "event_to_dict",
    "next_request_id",
]


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AcceptedEvent:
    """The request was admitted to the queue."""

    request_id: str
    queue_depth: int

    type: str = field(default="accepted", init=False)
    terminal: bool = field(default=False, init=False)


@dataclass(frozen=True)
class RejectedEvent:
    """Back-pressure: the queue is full; retry after the given delay."""

    request_id: str
    reason: str
    retry_after_s: float

    type: str = field(default="rejected", init=False)
    terminal: bool = field(default=True, init=False)


@dataclass(frozen=True)
class ExpiredEvent:
    """The request's deadline passed before it completed."""

    request_id: str
    deadline_s: float
    waited_s: float

    type: str = field(default="expired", init=False)
    terminal: bool = field(default=True, init=False)


@dataclass(frozen=True)
class OperatorEvent:
    """Streaming progress: one operator of the request finished.

    ``cached`` means the result came from the shared cache without any
    solve; ``coalesced`` means this request shared another in-flight
    request's solve of the identical operator (single-flight).
    """

    request_id: str
    operator: str
    index: int
    total: int
    gflops: float
    time_seconds: float
    cached: bool
    coalesced: bool

    type: str = field(default="operator", init=False)
    terminal: bool = field(default=False, init=False)


@dataclass(frozen=True)
class CompletedEvent:
    """Terminal success: aggregates of the whole network."""

    request_id: str
    response: "OptimizeResponse"

    type: str = field(default="completed", init=False)
    terminal: bool = field(default=True, init=False)


@dataclass(frozen=True)
class FailedEvent:
    """Terminal failure inside the solve itself."""

    request_id: str
    error: str

    type: str = field(default="failed", init=False)
    terminal: bool = field(default=True, init=False)


ServingEvent = Union[
    AcceptedEvent, RejectedEvent, ExpiredEvent, OperatorEvent, CompletedEvent,
    FailedEvent,
]


# ----------------------------------------------------------------------
# Response
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OperatorFigure:
    """Per-layer slice of a response (JSON-able subset of the outcome)."""

    name: str
    gflops: float
    time_seconds: float
    cached: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "gflops": float(self.gflops),
            "time_seconds": float(self.time_seconds),
            "cached": bool(self.cached),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "OperatorFigure":
        return cls(
            name=payload["name"],
            gflops=float(payload["gflops"]),
            time_seconds=float(payload["time_seconds"]),
            cached=bool(payload["cached"]),
        )


@dataclass(frozen=True)
class OptimizeResponse:
    """Aggregated outcome of one request, with service-time breakdown.

    ``queued_s`` is the time spent waiting for a worker, ``service_s``
    the time spent solving (or waiting on coalesced solves), and their
    sum is the end-to-end latency the client observed server-side.

    ``degraded`` marks a response answered by the server's *fallback*
    strategy because the primary exceeded its per-request solve budget
    (``ServerConfig.solve_timeout_s``): the figures are real, just from
    a cheaper search, and ``strategy`` names the fallback that produced
    them.  Absent on the wire it decodes as ``False``, so pre-existing
    peers interoperate unchanged.
    """

    request_id: str
    network: str
    strategy: str
    machine: str
    num_operators: int
    distinct_operators: int
    cache_hits: int
    coalesced: int
    total_time_seconds: float
    total_gflops: float
    queued_s: float
    service_s: float
    operators: Tuple[OperatorFigure, ...]
    degraded: bool = False

    @property
    def latency_s(self) -> float:
        """End-to-end server-side latency of the request."""
        return self.queued_s + self.service_s

    def to_dict(self) -> Dict[str, Any]:
        return {
            "request_id": self.request_id,
            "network": self.network,
            "strategy": self.strategy,
            "machine": self.machine,
            "num_operators": self.num_operators,
            "distinct_operators": self.distinct_operators,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "total_time_seconds": float(self.total_time_seconds),
            "total_gflops": float(self.total_gflops),
            "queued_s": float(self.queued_s),
            "service_s": float(self.service_s),
            "operators": [figure.to_dict() for figure in self.operators],
            "degraded": bool(self.degraded),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "OptimizeResponse":
        return cls(
            request_id=payload["request_id"],
            network=payload["network"],
            strategy=payload["strategy"],
            machine=payload["machine"],
            num_operators=int(payload["num_operators"]),
            distinct_operators=int(payload["distinct_operators"]),
            cache_hits=int(payload["cache_hits"]),
            coalesced=int(payload["coalesced"]),
            total_time_seconds=float(payload["total_time_seconds"]),
            total_gflops=float(payload["total_gflops"]),
            queued_s=float(payload["queued_s"]),
            service_s=float(payload["service_s"]),
            operators=tuple(
                OperatorFigure.from_dict(entry) for entry in payload["operators"]
            ),
            degraded=bool(payload.get("degraded", False)),
        )

    @classmethod
    def from_network_result(
        cls,
        result: NetworkResult,
        *,
        request_id: str,
        coalesced: int,
        queued_s: float,
        service_s: float,
        degraded: bool = False,
    ) -> "OptimizeResponse":
        """Project an engine-level result into the wire response."""
        return cls(
            request_id=request_id,
            network=result.network,
            strategy=result.strategy,
            machine=result.machine_name,
            num_operators=result.num_operators,
            distinct_operators=result.distinct_operators,
            cache_hits=result.cache_hits,
            coalesced=coalesced,
            total_time_seconds=result.total_time_seconds,
            total_gflops=result.total_gflops,
            queued_s=queued_s,
            service_s=service_s,
            operators=tuple(
                OperatorFigure(
                    name=o.spec.name,
                    gflops=o.gflops,
                    time_seconds=o.time_seconds,
                    cached=o.cached,
                )
                for o in result.operators
            ),
            degraded=degraded,
        )


# ----------------------------------------------------------------------
# JSON-lines framing
# ----------------------------------------------------------------------
def event_to_dict(event: ServingEvent) -> Dict[str, Any]:
    """Plain-dict form of any serving event (tagged with ``type``)."""
    if isinstance(event, AcceptedEvent):
        return {
            "type": event.type,
            "request_id": event.request_id,
            "queue_depth": event.queue_depth,
        }
    if isinstance(event, RejectedEvent):
        return {
            "type": event.type,
            "request_id": event.request_id,
            "reason": event.reason,
            "retry_after_s": float(event.retry_after_s),
        }
    if isinstance(event, ExpiredEvent):
        return {
            "type": event.type,
            "request_id": event.request_id,
            "deadline_s": float(event.deadline_s),
            "waited_s": float(event.waited_s),
        }
    if isinstance(event, OperatorEvent):
        return {
            "type": event.type,
            "request_id": event.request_id,
            "operator": event.operator,
            "index": event.index,
            "total": event.total,
            "gflops": float(event.gflops),
            "time_seconds": float(event.time_seconds),
            "cached": event.cached,
            "coalesced": event.coalesced,
        }
    if isinstance(event, CompletedEvent):
        return {
            "type": event.type,
            "request_id": event.request_id,
            "response": event.response.to_dict(),
        }
    if isinstance(event, FailedEvent):
        return {
            "type": event.type,
            "request_id": event.request_id,
            "error": event.error,
        }
    raise TypeError(f"not a serving event: {event!r}")


def event_from_dict(payload: Mapping[str, Any]) -> ServingEvent:
    """Rebuild a serving event from its tagged-dict form."""
    kind = payload.get("type")
    if kind == "accepted":
        return AcceptedEvent(
            request_id=payload["request_id"],
            queue_depth=int(payload["queue_depth"]),
        )
    if kind == "rejected":
        return RejectedEvent(
            request_id=payload["request_id"],
            reason=payload["reason"],
            retry_after_s=float(payload["retry_after_s"]),
        )
    if kind == "expired":
        return ExpiredEvent(
            request_id=payload["request_id"],
            deadline_s=float(payload["deadline_s"]),
            waited_s=float(payload["waited_s"]),
        )
    if kind == "operator":
        return OperatorEvent(
            request_id=payload["request_id"],
            operator=payload["operator"],
            index=int(payload["index"]),
            total=int(payload["total"]),
            gflops=float(payload["gflops"]),
            time_seconds=float(payload["time_seconds"]),
            cached=bool(payload["cached"]),
            coalesced=bool(payload["coalesced"]),
        )
    if kind == "completed":
        return CompletedEvent(
            request_id=payload["request_id"],
            response=OptimizeResponse.from_dict(payload["response"]),
        )
    if kind == "failed":
        return FailedEvent(
            request_id=payload["request_id"], error=payload["error"]
        )
    raise ValueError(f"unknown event type {kind!r}")


def encode_message(payload: Mapping[str, Any]) -> bytes:
    """One JSON-lines frame (UTF-8, newline terminated)."""
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def decode_message(line: bytes) -> Dict[str, Any]:
    """Inverse of :func:`encode_message`."""
    return json.loads(line.decode("utf-8"))


def collect_operator_events(events: Sequence[ServingEvent]) -> List[OperatorEvent]:
    """The per-operator progress slice of an event stream, in order."""
    return [event for event in events if isinstance(event, OperatorEvent)]
