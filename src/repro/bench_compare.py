"""Perf-regression sentinel: compare bench payloads against a baseline.

The repo's benchmark runners (``benchmarks/run_bench.py`` and
``python -m repro bench``) emit JSON payloads whose per-stage wall
times live under ``"wall_s"`` (or, for older/flatter payloads, as
top-level ``*_s`` numeric keys).  This module compares two such
payloads stage by stage:

* only stages present in **both** payloads are compared — a baseline
  from a full run still gates a ``--quick`` run on their shared stages;
* a stage *regresses* when it is slower than baseline by more than the
  tolerance band **and** the baseline time is above a noise floor
  (``min_seconds``) — sub-floor stages are reported but never gate;
* the verdict is the worst stage: exit 0 on parity/improvement,
  1 on regression (``benchmarks/compare.py`` and ``repro bench
  --compare`` turn that into the process exit code).

Every gated run appends one JSON line to a history file
(``BENCH_history.jsonl``) so regressions can be bisected over time
without re-running old commits.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = [
    "append_history",
    "compare_payloads",
    "extract_stages",
    "format_report",
    "load_payload",
]

#: Stages faster than this in the baseline never gate (timer noise).
DEFAULT_MIN_SECONDS = 0.01


def load_payload(path: Union[str, Path]) -> Dict[str, Any]:
    """Read one bench payload (strict: missing/bad files raise)."""
    with Path(path).expanduser().open("r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: bench payload must be a JSON object")
    return payload


def extract_stages(payload: Mapping[str, Any]) -> Dict[str, float]:
    """``{stage: seconds}`` from one bench payload.

    Prefers the ``"wall_s"`` section (run_bench's stage dict); falls
    back to top-level numeric ``*_s`` keys (the ``repro bench`` CLI
    payload).  Non-numeric entries are skipped, never fatal.
    """
    section = payload.get("wall_s")
    source: Mapping[str, Any]
    if isinstance(section, Mapping) and section:
        source = section
    else:
        source = {
            key: value
            for key, value in payload.items()
            if key.endswith("_s")
        }
    stages: Dict[str, float] = {}
    for key, value in source.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        stages[str(key)] = float(value)
    return stages


def compare_payloads(
    current: Mapping[str, Any],
    baseline: Mapping[str, Any],
    *,
    tolerance_pct: float = 10.0,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> Dict[str, Any]:
    """Stage-by-stage comparison of two bench payloads.

    Returns ``{"ok": bool, "tolerance_pct", "stages": [...],
    "regressions": [names], "only_current": [...], "only_baseline":
    [...], "baseline_commit", "current_commit"}``.  Each stage entry
    carries ``{stage, baseline_s, current_s, delta_pct, gating,
    regressed}``; ``delta_pct`` is positive when slower.
    """
    current_stages = extract_stages(current)
    baseline_stages = extract_stages(baseline)
    common = sorted(set(current_stages) & set(baseline_stages))
    stages: List[Dict[str, Any]] = []
    regressions: List[str] = []
    for name in common:
        base_s = baseline_stages[name]
        cur_s = current_stages[name]
        delta_pct = (
            100.0 * (cur_s - base_s) / base_s if base_s > 0 else 0.0
        )
        gating = base_s >= min_seconds
        regressed = gating and delta_pct > tolerance_pct
        if regressed:
            regressions.append(name)
        stages.append(
            {
                "stage": name,
                "baseline_s": base_s,
                "current_s": cur_s,
                "delta_pct": delta_pct,
                "gating": gating,
                "regressed": regressed,
            }
        )
    return {
        "ok": not regressions,
        "tolerance_pct": float(tolerance_pct),
        "min_seconds": float(min_seconds),
        "compared": len(common),
        "stages": stages,
        "regressions": regressions,
        "only_current": sorted(set(current_stages) - set(baseline_stages)),
        "only_baseline": sorted(set(baseline_stages) - set(current_stages)),
        "baseline_commit": baseline.get("commit"),
        "current_commit": current.get("commit"),
    }


def format_report(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of one :func:`compare_payloads` result."""
    lines = [
        f"perf comparison vs baseline commit "
        f"{report.get('baseline_commit') or '?'} "
        f"(tolerance ±{report['tolerance_pct']:.0f}%, "
        f"floor {report['min_seconds']:g}s)",
    ]
    if not report["stages"]:
        lines.append("  no common stages to compare")
        return "\n".join(lines)
    header = (
        f"  {'stage':<34} {'baseline_s':>11} {'current_s':>11} "
        f"{'delta':>8}  verdict"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header)))
    for stage in report["stages"]:
        if stage["regressed"]:
            verdict = "REGRESSED"
        elif not stage["gating"]:
            verdict = "(below floor)"
        else:
            verdict = "ok"
        lines.append(
            f"  {stage['stage']:<34} {stage['baseline_s']:>11.4f} "
            f"{stage['current_s']:>11.4f} {stage['delta_pct']:>+7.1f}%  "
            f"{verdict}"
        )
    for name in report["only_current"]:
        lines.append(f"  {name:<34} (new stage; no baseline)")
    for name in report["only_baseline"]:
        lines.append(f"  {name:<34} (baseline only; not run)")
    if report["ok"]:
        lines.append(f"PARITY: {report['compared']} stage(s) within tolerance")
    else:
        lines.append(
            "REGRESSION: " + ", ".join(report["regressions"])
        )
    return "\n".join(lines)


def append_history(
    path: Union[str, Path], entry: Mapping[str, Any]
) -> Path:
    """Append one JSON line to the bench history file (created on first use)."""
    path = Path(path).expanduser()
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(dict(entry), sort_keys=True) + "\n")
    return path
