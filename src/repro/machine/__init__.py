"""Machine descriptions and bandwidth modeling for the MOpt optimizer."""

from .bandwidth import BandwidthReport, effective_bandwidths_for_model, measure_bandwidths
from .presets import (
    MachineRegistry,
    available_machines,
    cascade_lake_i9_10980xe,
    coffee_lake_i7_9700k,
    get_machine,
    machine_registry,
    register_machine,
    tiny_test_machine,
)
from .spec import CacheLevel, MachineSpec, MachineSpecError, VectorISA

__all__ = [
    "BandwidthReport",
    "CacheLevel",
    "MachineRegistry",
    "MachineSpec",
    "MachineSpecError",
    "VectorISA",
    "available_machines",
    "cascade_lake_i9_10980xe",
    "coffee_lake_i7_9700k",
    "effective_bandwidths_for_model",
    "get_machine",
    "machine_registry",
    "measure_bandwidths",
    "register_machine",
    "tiny_test_machine",
]
