"""Machine descriptions: memory hierarchy, bandwidths, cores and SIMD.

The analytical optimizer needs, per Section 5 and 7 of the paper:

* the capacity of each cache level (and the register file),
* the bandwidth between adjacent levels of the hierarchy (``BW_l``), used to
  scale the per-level data volumes in the min–max objective,
* the core count and SIMD width/FMA characteristics used by the microkernel
  design (Section 6) and the parallel model (Section 7).

The paper measures bandwidths with synthetic benchmarks on real hardware;
this reproduction records representative sustained-bandwidth figures in the
machine presets and exposes a small synthetic "bandwidth benchmark"
(:mod:`repro.machine.bandwidth`) that derives parallel-scaled bandwidths the
way Section 7 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple


class MachineSpecError(ValueError):
    """Raised for malformed machine descriptions."""


def format_bytes(num_bytes: int) -> str:
    """Human-readable byte count (``32KiB``, ``1.5MiB``) for messages/names."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            text = f"{value:.6g}"
            return f"{text}{unit}"
        value /= 1024
    return f"{num_bytes}B"


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    Parameters
    ----------
    name:
        Level name (``"L1"``, ``"L2"``, ``"L3"``).
    capacity_bytes:
        Capacity of the cache.  For private caches this is the per-core
        capacity; for shared caches the total capacity.
    line_bytes:
        Cache line size in bytes.
    shared:
        Whether the cache is shared by all cores (paper: L3) or private to a
        core (paper: L1, L2).
    associativity:
        Set associativity; used only by the set-associative simulator in
        :mod:`repro.sim.cache` (the analytical model assumes full
        associativity).
    bandwidth_gbps:
        Sustained bandwidth, in GB/s, for moving data between this level and
        the next *faster* level (i.e. L1's figure is the L1→register
        bandwidth, L3's figure is the L3→L2 bandwidth), measured per core.
    """

    name: str
    capacity_bytes: int
    line_bytes: int = 64
    shared: bool = False
    associativity: int = 8
    bandwidth_gbps: float = 100.0

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise MachineSpecError(f"{self.name}: capacity must be positive")
        if self.line_bytes <= 0:
            raise MachineSpecError(f"{self.name}: line size must be positive")
        if self.associativity <= 0:
            raise MachineSpecError(f"{self.name}: associativity must be positive")
        if self.bandwidth_gbps <= 0:
            raise MachineSpecError(f"{self.name}: bandwidth must be positive")

    def capacity_elements(self, dtype_bytes: int = 4) -> float:
        """Capacity in tensor elements of the given width."""
        return self.capacity_bytes / dtype_bytes

    def line_elements(self, dtype_bytes: int = 4) -> int:
        """Cache-line size in tensor elements."""
        return max(1, self.line_bytes // dtype_bytes)


@dataclass(frozen=True)
class VectorISA:
    """SIMD/FMA characteristics used for microkernel design (Section 6)."""

    name: str = "avx2"
    vector_bytes: int = 32
    fma_units: int = 2
    fma_latency_cycles: float = 5.0
    num_vector_registers: int = 16

    def __post_init__(self) -> None:
        if self.vector_bytes <= 0 or self.vector_bytes & (self.vector_bytes - 1):
            raise MachineSpecError(
                f"vector width must be a positive power of two bytes, "
                f"got {self.vector_bytes}"
            )
        if self.fma_units <= 0:
            raise MachineSpecError(f"fma_units must be positive, got {self.fma_units}")
        if self.fma_latency_cycles <= 0:
            raise MachineSpecError(
                f"fma_latency_cycles must be positive, got {self.fma_latency_cycles}"
            )
        if self.num_vector_registers <= 0:
            raise MachineSpecError(
                f"num_vector_registers must be positive, "
                f"got {self.num_vector_registers}"
            )

    def vector_lanes(self, dtype_bytes: int = 4) -> int:
        """Number of elements per vector register."""
        return max(1, self.vector_bytes // dtype_bytes)

    def fma_per_cycle(self, dtype_bytes: int = 4) -> int:
        """Element FMAs retired per cycle per core at peak."""
        return self.fma_units * self.vector_lanes(dtype_bytes)

    def required_independent_fmas(self, dtype_bytes: int = 4) -> int:
        """Independent FMAs needed to saturate the pipeline (Little's law).

        The paper computes ``latency x throughput`` vector FMAs; expressed in
        vector operations this is ``fma_latency_cycles * fma_units``.
        """
        return int(round(self.fma_latency_cycles * self.fma_units))


@dataclass(frozen=True)
class MachineSpec:
    """Full machine description used by the optimizer and the simulator.

    ``caches`` are ordered from the fastest/smallest (L1) outwards.  The
    register file is described implicitly via ``isa`` (register count and
    vector width).  ``dram_bandwidth_gbps`` is the single-core sustained
    memory bandwidth; ``parallel_dram_bandwidth_gbps`` is the whole-socket
    figure the parallel model uses (Section 7 notes the effective
    memory-to-L3 bandwidth is higher when all cores stream).
    """

    name: str
    cores: int
    frequency_ghz: float
    caches: Tuple[CacheLevel, ...]
    isa: VectorISA = field(default_factory=VectorISA)
    dram_bandwidth_gbps: float = 20.0
    parallel_dram_bandwidth_gbps: Optional[float] = None
    dtype_bytes: int = 4

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise MachineSpecError("cores must be positive")
        if self.frequency_ghz <= 0:
            raise MachineSpecError("frequency must be positive")
        if not self.caches:
            raise MachineSpecError("at least one cache level is required")
        names = [c.name for c in self.caches]
        if len(set(names)) != len(names):
            raise MachineSpecError(f"duplicate cache level names: {names}")
        if self.dtype_bytes <= 0:
            raise MachineSpecError("dtype_bytes must be positive")
        if self.dram_bandwidth_gbps <= 0:
            raise MachineSpecError("dram_bandwidth_gbps must be positive")
        if (
            self.parallel_dram_bandwidth_gbps is not None
            and self.parallel_dram_bandwidth_gbps < self.dram_bandwidth_gbps
        ):
            raise MachineSpecError(
                f"parallel DRAM bandwidth "
                f"({self.parallel_dram_bandwidth_gbps} GB/s) cannot be below "
                f"the single-core figure ({self.dram_bandwidth_gbps} GB/s)"
            )
        # Hierarchy sanity from L1 outwards: capacities must not shrink and
        # fill bandwidths must not grow (bandwidth is this model's proxy for
        # latency — an outer level is never faster to read than an inner one).
        # Malformed design-space candidates fail here, fast and loudly,
        # instead of producing nonsense cost tables.
        for inner, outer in zip(self.caches, self.caches[1:]):
            if outer.capacity_bytes < inner.capacity_bytes:
                raise MachineSpecError(
                    f"cache capacities must be non-decreasing from L1 "
                    f"outwards: {outer.name} ({format_bytes(outer.capacity_bytes)}) "
                    f"is smaller than {inner.name} "
                    f"({format_bytes(inner.capacity_bytes)})"
                )
            if outer.bandwidth_gbps > inner.bandwidth_gbps:
                raise MachineSpecError(
                    f"cache bandwidths must be non-increasing from L1 "
                    f"outwards: {outer.name} ({outer.bandwidth_gbps} GB/s) is "
                    f"faster than {inner.name} ({inner.bandwidth_gbps} GB/s)"
                )

    # -- lookups ----------------------------------------------------------
    @property
    def cache_names(self) -> Tuple[str, ...]:
        """Cache level names ordered from fastest (L1) outwards."""
        return tuple(c.name for c in self.caches)

    def cache(self, name: str) -> CacheLevel:
        """Look up a cache level by name."""
        for level in self.caches:
            if level.name == name:
                return level
        raise MachineSpecError(f"unknown cache level {name!r}; have {self.cache_names}")

    @property
    def register_capacity_elements(self) -> int:
        """Accumulator capacity of the register file in elements.

        The microkernel keeps output accumulators, kernel vectors and
        broadcast input values in the vector register file; its usable
        capacity is ``num_vector_registers * vector_lanes``.
        """
        return self.isa.num_vector_registers * self.isa.vector_lanes(self.dtype_bytes)

    def capacity_elements(self, level: str) -> float:
        """Capacity in elements of a named level (``"Reg"`` or a cache name)."""
        if level == "Reg":
            return float(self.register_capacity_elements)
        return self.cache(level).capacity_elements(self.dtype_bytes)

    # -- bandwidths ---------------------------------------------------------
    def peak_gflops(self, cores: Optional[int] = None) -> float:
        """Peak single-precision GFLOP/s (2 flops per FMA element).

        ``cores`` is clamped to the machine's core count, mirroring the
        bandwidth model's thread clamp: when a fixed thread setting
        meets a smaller candidate machine (a core-count sweep), the
        candidate must not be credited with compute it does not have.
        """
        cores = self.cores if cores is None else min(cores, self.cores)
        return (
            2.0
            * self.isa.fma_per_cycle(self.dtype_bytes)
            * self.frequency_ghz
            * cores
        )

    def level_bandwidth_gbps(self, level: str, *, parallel: bool = False) -> float:
        """Bandwidth for filling a named level from the next outer level.

        ``level`` is ``"Reg"``, a cache name, or ``"DRAM"``:

        * ``"Reg"`` — L1→register bandwidth (per core),
        * ``"L1"`` — L2→L1, ``"L2"`` — L3→L2, ``"L3"``/``"DRAM"`` — memory→L3.

        With ``parallel=True`` the memory→L3 figure switches to the
        whole-socket sustained bandwidth while the inner levels stay per-core
        (each core owns its L1/L2 — Section 7).
        """
        order = list(self.cache_names)
        if level == "Reg":
            return self.cache(order[0]).bandwidth_gbps
        if level in order:
            idx = order.index(level)
            if idx + 1 < len(order):
                return self.cache(order[idx + 1]).bandwidth_gbps
            return self._dram_bandwidth(parallel)
        if level.upper() == "DRAM":
            return self._dram_bandwidth(parallel)
        raise MachineSpecError(f"unknown level {level!r}")

    def _dram_bandwidth(self, parallel: bool) -> float:
        if parallel and self.parallel_dram_bandwidth_gbps is not None:
            return self.parallel_dram_bandwidth_gbps
        return self.dram_bandwidth_gbps

    def bandwidth_elements_per_second(
        self, level: str, *, parallel: bool = False
    ) -> float:
        """Bandwidth converted to tensor elements per second."""
        return self.level_bandwidth_gbps(level, parallel=parallel) * 1e9 / self.dtype_bytes

    # -- tiling levels -------------------------------------------------------
    def tiling_levels(self, *, include_register: bool = True) -> Tuple[str, ...]:
        """Tiling levels from innermost outwards (``Reg``, then the caches)."""
        levels: List[str] = ["Reg"] if include_register else []
        levels.extend(self.cache_names)
        return tuple(levels)

    # -- derivation (design-space exploration) -------------------------------
    def with_cores(self, cores: int) -> "MachineSpec":
        """Copy of the machine with a different active core count."""
        return replace(self, cores=cores)

    def renamed(self, name: str) -> "MachineSpec":
        """Copy of the machine under a different name (cache keys change)."""
        return replace(self, name=name)

    def with_cache(self, level: str, **changes: Any) -> "MachineSpec":
        """Copy with one cache level's fields changed (others untouched).

        ``changes`` are :class:`CacheLevel` field overrides, e.g.
        ``machine.with_cache("L2", capacity_bytes=512 * 1024,
        associativity=8)``.  The hierarchy invariants are re-validated, so
        a derivation that breaks capacity/bandwidth monotonicity raises
        :class:`MachineSpecError` — this is what lets design-space sweeps
        prune malformed candidates instead of costing them.
        """
        self.cache(level)  # raise early with the known-levels message
        caches = tuple(
            replace(cache, **changes) if cache.name == level else cache
            for cache in self.caches
        )
        return replace(self, caches=caches)

    def with_cache_capacity(self, level: str, capacity_bytes: int) -> "MachineSpec":
        """Copy with one cache level resized (the classic DSE axis)."""
        return self.with_cache(level, capacity_bytes=capacity_bytes)

    def with_isa(self, **changes: Any) -> "MachineSpec":
        """Copy with :class:`VectorISA` field overrides (others untouched)."""
        return replace(self, isa=replace(self.isa, **changes))

    def with_vector_bytes(self, vector_bytes: int) -> "MachineSpec":
        """Copy with a different SIMD register width."""
        return self.with_isa(vector_bytes=vector_bytes)

    def with_dram_bandwidth(
        self, single_core_gbps: float, parallel_gbps: Optional[float] = None
    ) -> "MachineSpec":
        """Copy with different memory bandwidths.

        ``parallel_gbps`` defaults to scaling the existing parallel figure
        by the same factor as the single-core one, preserving the preset's
        saturation behavior.
        """
        if parallel_gbps is None and self.parallel_dram_bandwidth_gbps is not None:
            parallel_gbps = self.parallel_dram_bandwidth_gbps * (
                single_core_gbps / self.dram_bandwidth_gbps
            )
        return replace(
            self,
            dram_bandwidth_gbps=single_core_gbps,
            parallel_dram_bandwidth_gbps=parallel_gbps,
        )

    # -- hardware-cost axes --------------------------------------------------
    @property
    def total_sram_bytes(self) -> int:
        """Total on-chip SRAM: per-core private caches times cores, shared once.

        The hardware-cost axis of the Pareto analyses in :mod:`repro.dse`:
        what you pay in silicon for the cache hierarchy.
        """
        total = 0
        for cache in self.caches:
            total += cache.capacity_bytes * (1 if cache.shared else self.cores)
        return total

    @property
    def compute_lanes(self) -> int:
        """Total vector lanes across the machine (``cores x lanes``) —
        the compute-cost axis of the Pareto analyses."""
        return self.cores * self.isa.vector_lanes(self.dtype_bytes)

    def describe(self) -> str:
        """Multi-line human readable description."""
        lines = [
            f"{self.name}: {self.cores} cores @ {self.frequency_ghz} GHz, "
            f"{self.isa.name} ({self.isa.vector_lanes(self.dtype_bytes)} lanes x "
            f"{self.isa.fma_units} FMA), peak {self.peak_gflops():.0f} GFLOP/s"
        ]
        for cache in self.caches:
            scope = "shared" if cache.shared else "per-core"
            lines.append(
                f"  {cache.name}: {cache.capacity_bytes // 1024} KiB {scope}, "
                f"{cache.bandwidth_gbps:.0f} GB/s"
            )
        lines.append(f"  DRAM: {self.dram_bandwidth_gbps:.0f} GB/s single core")
        return "\n".join(lines)
