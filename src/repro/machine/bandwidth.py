"""Synthetic bandwidth "benchmark" used by the parallel cost model.

Section 7 of the paper measures, with synthetic benchmarks on the real
machine, (i) the parallel memory-to-L3 bandwidth and (ii) the per-core
L3-to-L2 bandwidth, because those differ from the single-core values when
all cores stream data simultaneously.  There is no hardware here, so this
module *models* that benchmark: it derives the effective per-core and
aggregate bandwidths from a machine description using a simple contention
model, and returns them in the same shape the optimizer consumes.

The contention model is deliberately simple and documented:

* private levels (register, L1, L2 fills) scale linearly with cores — each
  core owns its private caches, so per-core bandwidth is unchanged;
* the shared L3 serves all cores, so per-core L3 bandwidth is the total L3
  bandwidth divided by the active cores (with a small concurrency bonus,
  since Sectoin 7 notes measured parallel bandwidths are not a perfect
  1/cores split);
* DRAM bandwidth saturates: the aggregate grows with core count but is
  capped at the socket's ``parallel_dram_bandwidth_gbps``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .spec import MachineSpec

#: Aggregate bandwidth a banked, shared L3 sustains relative to the
#: single-core figure when all cores stream from it concurrently.
_L3_CONTENTION_EFFICIENCY = 2.5
#: Fraction of the socket DRAM bandwidth one additional core contributes.
_DRAM_SCALING_PER_CORE = 0.45


@dataclass(frozen=True)
class BandwidthReport:
    """Effective bandwidths (GB/s) for one machine and thread count.

    ``per_core`` holds the bandwidth available to one core for filling each
    level; ``aggregate`` holds the machine-wide totals.  Keys are the level
    names accepted by :meth:`MachineSpec.level_bandwidth_gbps` (``"Reg"``,
    cache names, ``"DRAM"``).
    """

    machine: str
    threads: int
    per_core: Dict[str, float]
    aggregate: Dict[str, float]

    def per_core_elements_per_second(self, level: str, dtype_bytes: int = 4) -> float:
        """Per-core bandwidth converted to elements/second."""
        return self.per_core[level] * 1e9 / dtype_bytes

    def aggregate_elements_per_second(self, level: str, dtype_bytes: int = 4) -> float:
        """Aggregate bandwidth converted to elements/second."""
        return self.aggregate[level] * 1e9 / dtype_bytes


def measure_bandwidths(machine: MachineSpec, threads: Optional[int] = None) -> BandwidthReport:
    """Model the synthetic bandwidth benchmark of Section 7.

    Returns effective bandwidths for ``threads`` active cores (defaults to
    all cores of the machine).  For ``threads == 1`` the report reproduces
    the single-core bandwidths stored in the machine description.
    """
    threads = machine.cores if threads is None else threads
    if threads <= 0:
        raise ValueError(f"threads must be positive, got {threads}")
    threads = min(threads, machine.cores)

    per_core: Dict[str, float] = {}
    aggregate: Dict[str, float] = {}

    # Register fill (L1 -> Reg) and private cache fills scale with cores.
    for level in ("Reg",) + machine.cache_names[:-1]:
        bandwidth = machine.level_bandwidth_gbps(level)
        per_core[level] = bandwidth
        aggregate[level] = bandwidth * threads

    # Shared last-level cache: total bandwidth split across cores with a
    # small concurrency bonus (banked L3 delivers slightly more than the
    # single-core figure in aggregate).
    last_level = machine.cache_names[-1]
    single_core_l3 = machine.level_bandwidth_gbps(machine.cache_names[-2]) if len(
        machine.cache_names
    ) > 1 else machine.level_bandwidth_gbps(last_level)
    total_l3 = single_core_l3 * _L3_CONTENTION_EFFICIENCY
    if threads == 1:
        per_core_l3 = single_core_l3
    else:
        per_core_l3 = max(total_l3 / threads, single_core_l3 / threads)
    # The level name keyed here is the level being *filled from* L3, i.e. the
    # second-to-last cache (L2): its fill bandwidth is what contention reduces.
    if len(machine.cache_names) > 1:
        fill_level = machine.cache_names[-2]
        per_core[fill_level] = per_core_l3
        aggregate[fill_level] = per_core_l3 * threads

    # Memory -> L3: saturating scaling up to the socket limit.
    single = machine.dram_bandwidth_gbps
    socket_cap = machine.parallel_dram_bandwidth_gbps or single
    if threads == 1:
        total_dram = single
    else:
        total_dram = min(socket_cap, single * (1.0 + _DRAM_SCALING_PER_CORE * (threads - 1)))
    per_core["DRAM"] = total_dram / threads
    aggregate["DRAM"] = total_dram
    per_core[last_level] = total_dram / threads
    aggregate[last_level] = total_dram

    return BandwidthReport(machine.name, threads, per_core, aggregate)


def effective_bandwidths_for_model(
    machine: MachineSpec, threads: Optional[int] = None
) -> Dict[str, float]:
    """Bandwidths (GB/s) keyed by tiling level for the min–max cost model.

    The optimizer divides each level's data volume by the bandwidth feeding
    that level:

    * ``"Reg"``: L1→register traffic uses the per-core L1 bandwidth,
    * ``"L1"``: L2→L1 traffic uses the per-core L2 bandwidth,
    * ``"L2"``: L3→L2 traffic uses the per-core (contended) L3 bandwidth,
    * ``"L3"``: memory→L3 traffic uses the aggregate DRAM bandwidth.
    """
    report = measure_bandwidths(machine, threads)
    result: Dict[str, float] = {"Reg": report.per_core["Reg"]}
    names = machine.cache_names
    for idx, name in enumerate(names):
        if idx + 1 < len(names):
            result[name] = report.per_core[name]
        else:
            result[name] = report.aggregate["DRAM"]
    return result
