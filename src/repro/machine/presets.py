"""Machine presets for the two evaluation platforms of the paper.

Section 9/10 of the paper evaluate on:

* an 8-core Intel Core i7-9700K (Coffee Lake): 32 KB L1 and 256 KB L2 per
  core, 12 MB shared L3, AVX2 (two 256-bit FMA units per core), and
* an 18-core Intel Core i9-10980XE (Cascade Lake): 32 KB L1, 1 MB L2 per
  core, 24.75 MB shared L3, AVX-512 — the paper runs it with 16 threads.

Cache capacities and core counts are taken from the paper; sustained
bandwidths and FMA latencies are representative figures for those
microarchitectures (they act as the ``BW_l`` constants of Section 5 and are
what the synthetic bandwidth benchmark of Section 7 would measure).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from .spec import CacheLevel, MachineSpec, VectorISA

KiB = 1024
MiB = 1024 * KiB


def coffee_lake_i7_9700k() -> MachineSpec:
    """8-core Intel Core i7-9700K, AVX2 — the paper's first platform."""
    return MachineSpec(
        name="i7-9700K",
        cores=8,
        frequency_ghz=3.6,
        caches=(
            CacheLevel("L1", 32 * KiB, line_bytes=64, shared=False, associativity=8,
                       bandwidth_gbps=350.0),
            CacheLevel("L2", 256 * KiB, line_bytes=64, shared=False, associativity=4,
                       bandwidth_gbps=150.0),
            CacheLevel("L3", 12 * MiB, line_bytes=64, shared=True, associativity=16,
                       bandwidth_gbps=80.0),
        ),
        isa=VectorISA(
            name="avx2",
            vector_bytes=32,
            fma_units=2,
            fma_latency_cycles=5.0,
            num_vector_registers=16,
        ),
        dram_bandwidth_gbps=20.0,
        parallel_dram_bandwidth_gbps=38.0,
    )


def cascade_lake_i9_10980xe() -> MachineSpec:
    """18-core Intel Core i9-10980XE, AVX-512 — the paper's second platform.

    The paper's experiments use 16 threads on this machine; comparison
    experiments therefore call :meth:`MachineSpec.with_cores` with 16.
    """
    return MachineSpec(
        name="i9-10980XE",
        cores=18,
        frequency_ghz=3.0,
        caches=(
            CacheLevel("L1", 32 * KiB, line_bytes=64, shared=False, associativity=8,
                       bandwidth_gbps=400.0),
            CacheLevel("L2", 1 * MiB, line_bytes=64, shared=False, associativity=16,
                       bandwidth_gbps=180.0),
            CacheLevel("L3", int(24.75 * MiB), line_bytes=64, shared=True, associativity=11,
                       bandwidth_gbps=70.0),
        ),
        isa=VectorISA(
            name="avx512",
            vector_bytes=64,
            fma_units=2,
            fma_latency_cycles=4.0,
            num_vector_registers=32,
        ),
        dram_bandwidth_gbps=21.0,
        parallel_dram_bandwidth_gbps=80.0,
    )


def tiny_test_machine() -> MachineSpec:
    """A deliberately small machine used by unit tests and examples.

    Small caches make capacity effects visible for small problem sizes, which
    keeps slice-level simulation fast while still exercising every code
    path of the optimizer and the simulator.
    """
    return MachineSpec(
        name="tiny-test",
        cores=4,
        frequency_ghz=2.0,
        caches=(
            CacheLevel("L1", 4 * KiB, line_bytes=64, shared=False, associativity=4,
                       bandwidth_gbps=200.0),
            CacheLevel("L2", 32 * KiB, line_bytes=64, shared=False, associativity=4,
                       bandwidth_gbps=100.0),
            CacheLevel("L3", 256 * KiB, line_bytes=64, shared=True, associativity=8,
                       bandwidth_gbps=50.0),
        ),
        isa=VectorISA(
            name="avx2",
            vector_bytes=32,
            fma_units=2,
            fma_latency_cycles=5.0,
            num_vector_registers=16,
        ),
        dram_bandwidth_gbps=10.0,
        parallel_dram_bandwidth_gbps=20.0,
    )


class MachineRegistry:
    """By-name registry of machine-preset factories.

    The mirror of :class:`repro.engine.strategy.StrategyRegistry` for
    machines: every public entry point that accepts a machine *by name*
    (``Session(machine="i7-9700k")``, the ``python -m repro`` CLI, the
    serving endpoints) resolves it here, so registering a new platform
    once makes it reachable everywhere.  Names are case-insensitive.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], MachineSpec]] = {}

    def register(
        self,
        name: str,
        factory: Callable[[], MachineSpec],
        *,
        replace: bool = False,
    ) -> Callable[[], MachineSpec]:
        """Register ``factory`` under ``name`` (returns the factory).

        Registering a name twice raises unless ``replace=True`` — a
        silently shadowed preset would make every by-name entry point
        (Session, CLI, DSE sweeps) resolve to the wrong machine.
        """
        if not name:
            raise ValueError("machine name must be non-empty")
        key = name.lower()
        if not replace and key in self._factories:
            raise ValueError(
                f"machine {name!r} is already registered; pass replace=True "
                f"to overwrite it (registered: {self.names()})"
            )
        self._factories[key] = factory
        return factory

    def create(self, name: str) -> MachineSpec:
        """Instantiate the preset registered under (case-insensitive) ``name``."""
        try:
            factory = self._factories[name.lower()]
        except KeyError:
            raise KeyError(
                f"unknown machine {name!r}; available: {self.names()}"
            ) from None
        return factory()

    def names(self) -> Tuple[str, ...]:
        """Registered preset names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._factories

    def __iter__(self):
        return iter(self.names())


#: The process-wide registry holding the paper's evaluation platforms
#: plus the small test machine.
machine_registry = MachineRegistry()
machine_registry.register("i7-9700k", coffee_lake_i7_9700k)
machine_registry.register("i9-10980xe", cascade_lake_i9_10980xe)
machine_registry.register("tiny", tiny_test_machine)


def register_machine(
    name: str, factory: Callable[[], MachineSpec], *, replace: bool = False
) -> None:
    """Register a new machine preset in the shared registry."""
    machine_registry.register(name, factory, replace=replace)


def available_machines() -> Tuple[str, ...]:
    """Names accepted by :func:`get_machine`."""
    return machine_registry.names()


def get_machine(name: str) -> MachineSpec:
    """Look up a machine preset by (case-insensitive) name."""
    return machine_registry.create(name)
