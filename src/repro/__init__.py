"""Reproduction of "Analytical Characterization and Design Space Exploration
for Optimization of CNNs" (Li et al., ASPLOS 2021).

The package implements the MOpt system described in the paper and the
substrates needed to evaluate it without the paper's hardware/software
stack:

* :mod:`repro.api` — **the public front door**: the :class:`Session`
  façade over every optimization path, the workload builders
  (``conv``/``matmul``/``network``/``parse``) and the unified
  request/result types.  The matching CLI is ``python -m repro``.
* :mod:`repro.core` — the analytical data-movement model, the eight-class
  permutation pruning, multi-level tile-size optimization (Algorithm 1),
  the parallel cost model and the microkernel design.
* :mod:`repro.machine` — machine descriptions (i7-9700K, i9-10980XE), the
  by-name preset registry and bandwidth modeling.
* :mod:`repro.sim` — a memory-hierarchy simulator, tiled executor and
  performance model standing in for the paper's hardware measurements.
* :mod:`repro.codegen` — a loop-nest IR and code emission for the tiled
  convolutions.
* :mod:`repro.baselines` — oneDNN-like and AutoTVM-like comparators plus
  random/grid/exhaustive search.
* :mod:`repro.engine` — the network-level optimization engine: the
  :class:`SearchStrategy` registry unifying all comparison systems, the
  two-tier persistent :class:`ResultCache` and the parallel
  :class:`NetworkOptimizer`.
* :mod:`repro.serving` — the async serving engine behind
  ``Session.optimize_async``: a queued, back-pressured
  :class:`OptimizationServer` with single-flight coalescing, graceful
  drain, streaming progress and in-process/TCP clients.
* :mod:`repro.dse` — hardware design-space exploration: declarative
  machine sweeps (:class:`DesignSpace` + axes), a resumable sweep
  executor over the engine path, Pareto frontiers and sensitivity
  reports.  The front doors are :meth:`Session.explore` and
  ``python -m repro dse``.
* :mod:`repro.workloads` — the Table 1 conv2d operators and configuration
  sampling.
* :mod:`repro.analysis` and :mod:`repro.experiments` — statistics and the
  drivers that regenerate every table and figure of the evaluation.

Quickstart — one operator::

    from repro.api import Session, conv

    session = Session(machine="i7-9700k")
    result = session.optimize(conv(256, 256, 14, 3, name="R9"))
    print(result.summary())          # GFLOP/s, time, search cost
    print(result.best_config.describe())

Whole network, with a persistent cache (the second run is warm)::

    from repro.api import Session

    session = Session(
        machine="i7-9700k", strategy="mopt",
        strategy_options={"threads": 8, "measure": False},
        cache="/tmp/repro-cache",
    )
    print(session.optimize("resnet18").summary())
    print(session.optimize("resnet18/R9").gflops)   # one layer, now cached

Async serving with coalescing and streaming progress::

    import asyncio

    async def main():
        async with Session(machine="i7-9700k") as session:
            response = await session.optimize_async(
                "resnet18", on_event=print
            )
            print(response.total_gflops)

    asyncio.run(main())

The same flows from a shell: ``python -m repro optimize resnet18
--machine i7-9700k``, ``python -m repro serve``, ``python -m repro warm``
(see ``python -m repro --help``).
"""

from .api import (
    Session,
    WarmCacheReport,
    conv,
    matmul,
    network,
    operator,
    parse,
)
from .api.types import OptimizeRequest
from .core import (
    ConvSpec,
    MOptOptimizer,
    MultiLevelConfig,
    OptimizationResult,
    OptimizerSettings,
    TilingConfig,
    data_volume,
    design_microkernel,
    fast_settings,
    multilevel_cost,
    optimize_conv,
    pruned_permutation_classes,
)
from .dse import (
    Axis,
    DesignSpace,
    ExplorationResult,
    axis_grid,
    axis_log2,
    axis_values,
    explore,
    pareto_frontier,
)
from .engine import (
    NetworkOptimizer,
    NetworkResult,
    OpResult,
    ResultCache,
    SearchStrategy,
    StrategyResult,
    available_strategies,
    get_strategy,
    register_strategy,
    result_cache_key,
    spec_shape_key,
    strategy_registry,
)
from .machine import (
    MachineSpec,
    available_machines,
    cascade_lake_i9_10980xe,
    coffee_lake_i7_9700k,
    get_machine,
    machine_registry,
    register_machine,
    tiny_test_machine,
)
from .serving import (
    OptimizationServer,
    OptimizeResponse,
    ServerConfig,
    ServingClient,
)
from .workloads import all_benchmarks, benchmark_by_name, network_benchmarks

__version__ = "1.8.0"

#: Deprecated top-level aliases: name -> (resolver, replacement).  Kept
#: importable (the api redesign moves the front door without breaking
#: old code) but each emits one DeprecationWarning on first access.
_DEPRECATED_ALIASES = {
    "optimize_network": (
        lambda: __import__(
            "repro.engine.network", fromlist=["optimize_network"]
        ).optimize_network,
        "repro.api.Session.optimize (or repro.engine.optimize_network)",
    ),
    "compare_network_strategies": (
        lambda: __import__(
            "repro.engine.network", fromlist=["compare_network_strategies"]
        ).compare_network_strategies,
        "repro.api.Session per strategy "
        "(or repro.engine.compare_network_strategies)",
    ),
}


def __getattr__(name: str):
    if name in _DEPRECATED_ALIASES:
        from ._deprecation import warn_once

        resolver, replacement = _DEPRECATED_ALIASES[name]
        warn_once(f"repro.{name}", replacement, stacklevel=2)
        value = resolver()
        globals()[name] = value  # later accesses skip __getattr__
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Axis",
    "ConvSpec",
    "DesignSpace",
    "ExplorationResult",
    "MachineSpec",
    "MOptOptimizer",
    "MultiLevelConfig",
    "NetworkOptimizer",
    "NetworkResult",
    "OpResult",
    "OptimizationResult",
    "OptimizationServer",
    "OptimizeRequest",
    "OptimizeResponse",
    "OptimizerSettings",
    "ResultCache",
    "SearchStrategy",
    "ServerConfig",
    "ServingClient",
    "Session",
    "StrategyResult",
    "TilingConfig",
    "WarmCacheReport",
    "all_benchmarks",
    "available_machines",
    "available_strategies",
    "axis_grid",
    "axis_log2",
    "axis_values",
    "benchmark_by_name",
    "cascade_lake_i9_10980xe",
    "coffee_lake_i7_9700k",
    "conv",
    "data_volume",
    "design_microkernel",
    "explore",
    "fast_settings",
    "get_machine",
    "get_strategy",
    "machine_registry",
    "matmul",
    "multilevel_cost",
    "network",
    "network_benchmarks",
    "operator",
    "optimize_conv",
    "pareto_frontier",
    "parse",
    "pruned_permutation_classes",
    "register_machine",
    "register_strategy",
    "result_cache_key",
    "spec_shape_key",
    "strategy_registry",
    "tiny_test_machine",
]
