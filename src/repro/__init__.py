"""Reproduction of "Analytical Characterization and Design Space Exploration
for Optimization of CNNs" (Li et al., ASPLOS 2021).

The package implements the MOpt system described in the paper and the
substrates needed to evaluate it without the paper's hardware/software
stack:

* :mod:`repro.core` — the analytical data-movement model, the eight-class
  permutation pruning, multi-level tile-size optimization (Algorithm 1),
  the parallel cost model and the microkernel design.
* :mod:`repro.machine` — machine descriptions (i7-9700K, i9-10980XE) and
  bandwidth modeling.
* :mod:`repro.sim` — a memory-hierarchy simulator, tiled executor and
  performance model standing in for the paper's hardware measurements.
* :mod:`repro.codegen` — a loop-nest IR and code emission for the tiled
  convolutions.
* :mod:`repro.baselines` — oneDNN-like and AutoTVM-like comparators plus
  random/grid/exhaustive search.
* :mod:`repro.engine` — the network-level optimization engine: the
  :class:`SearchStrategy` registry unifying all comparison systems, the
  two-tier persistent :class:`ResultCache` and the parallel
  :class:`NetworkOptimizer`.
* :mod:`repro.serving` — the async serving front-end: a queued,
  back-pressured :class:`OptimizationServer` with single-flight
  coalescing of identical in-flight operator solves, streaming
  per-operator progress, and in-process/TCP clients
  (``python -m repro.serving serve|demo``).
* :mod:`repro.workloads` — the Table 1 conv2d operators and configuration
  sampling.
* :mod:`repro.analysis` and :mod:`repro.experiments` — statistics and the
  drivers that regenerate every table and figure of the evaluation.

Quickstart::

    from repro import ConvSpec, MOptOptimizer, coffee_lake_i7_9700k

    spec = ConvSpec("example", batch=1, out_channels=64, in_channels=64,
                    in_height=56, in_width=56, kernel_h=3, kernel_w=3, padding=1)
    result = MOptOptimizer(coffee_lake_i7_9700k()).optimize(spec)
    print(result.best.config.describe())

Whole-network optimization with caching::

    from repro import NetworkOptimizer, ResultCache, coffee_lake_i7_9700k

    optimizer = NetworkOptimizer(
        coffee_lake_i7_9700k(), "mopt",
        strategy_options={"threads": 8, "measure": False},
        cache=ResultCache("/tmp/repro-cache"),
    )
    print(optimizer.optimize("resnet18").summary())
"""

from .core import (
    ConvSpec,
    MOptOptimizer,
    MultiLevelConfig,
    OptimizationResult,
    OptimizerSettings,
    TilingConfig,
    data_volume,
    design_microkernel,
    fast_settings,
    multilevel_cost,
    optimize_conv,
    pruned_permutation_classes,
)
from .engine import (
    NetworkOptimizer,
    NetworkResult,
    ResultCache,
    SearchStrategy,
    StrategyResult,
    available_strategies,
    compare_network_strategies,
    get_strategy,
    optimize_network,
    register_strategy,
    result_cache_key,
    spec_shape_key,
    strategy_registry,
)
from .machine import (
    MachineSpec,
    cascade_lake_i9_10980xe,
    coffee_lake_i7_9700k,
    get_machine,
    tiny_test_machine,
)
from .serving import (
    OptimizationServer,
    OptimizeRequest,
    OptimizeResponse,
    ServerConfig,
    ServingClient,
)
from .workloads import all_benchmarks, benchmark_by_name, network_benchmarks

__version__ = "1.2.0"

__all__ = [
    "ConvSpec",
    "MachineSpec",
    "MOptOptimizer",
    "MultiLevelConfig",
    "NetworkOptimizer",
    "NetworkResult",
    "OptimizationResult",
    "OptimizationServer",
    "OptimizeRequest",
    "OptimizeResponse",
    "OptimizerSettings",
    "ResultCache",
    "SearchStrategy",
    "ServerConfig",
    "ServingClient",
    "StrategyResult",
    "TilingConfig",
    "all_benchmarks",
    "available_strategies",
    "benchmark_by_name",
    "cascade_lake_i9_10980xe",
    "coffee_lake_i7_9700k",
    "compare_network_strategies",
    "data_volume",
    "design_microkernel",
    "fast_settings",
    "get_machine",
    "get_strategy",
    "multilevel_cost",
    "network_benchmarks",
    "optimize_conv",
    "optimize_network",
    "pruned_permutation_classes",
    "register_strategy",
    "result_cache_key",
    "spec_shape_key",
    "strategy_registry",
    "tiny_test_machine",
]
