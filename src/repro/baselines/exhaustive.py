"""Exhaustive permutation search — the ground truth the pruning is checked against.

Section 4's central claim is that the eight pruned permutation classes
contain a configuration as good as the best over all 5040 permutations.
This module provides the brute-force side of that comparison:

* :func:`best_over_all_permutations` optimizes tile sizes (with the same
  nonlinear solver MOpt uses) for *every* permutation, or for a caller-
  supplied subset, and returns the overall best modeled data volume,
* :func:`best_over_pruned_classes` does the same for only the eight
  representatives,
* :func:`verify_pruning` compares the two, optionally on a reduced
  permutation sample so the check stays fast enough for routine testing
  (the full 5040-permutation sweep is exposed for the dedicated benchmark).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.pruning import all_permutations, pruned_representatives
from ..core.solver import SolverOptions, solve_single_level, solve_single_level_batch
from ..core.tensor_spec import ConvSpec, LOOP_INDICES

#: Permutations per batched-solver chunk: bounds the stacked cost table's
#: footprint while amortizing the joint multistart sweep over many solves.
BATCH_CHUNK = 512


@dataclass(frozen=True)
class PermutationSolution:
    """Best modeled data volume found for one permutation."""

    permutation: Tuple[str, ...]
    volume: float
    tiles: Tuple[float, ...]


@dataclass(frozen=True)
class PruningVerification:
    """Comparison of pruned-set optimum against (a sample of) the full space."""

    spec_name: str
    pruned_best: PermutationSolution
    exhaustive_best: PermutationSolution
    permutations_checked: int
    elapsed_seconds: float

    @property
    def pruning_is_sound(self) -> bool:
        """True when no checked permutation beats the pruned set (within 0.5%)."""
        return self.pruned_best.volume <= self.exhaustive_best.volume * 1.005


def _solve(
    spec: ConvSpec,
    permutation: Sequence[str],
    capacity_elements: float,
    options: Optional[SolverOptions],
) -> PermutationSolution:
    config, volume = solve_single_level(
        spec, permutation, capacity_elements, options=options
    )
    tiles = tuple(config.tiles[i] for i in LOOP_INDICES)
    return PermutationSolution(tuple(permutation), volume, tiles)


def _solve_chunked(
    spec: ConvSpec,
    permutations: Sequence[Sequence[str]],
    capacity_elements: float,
    options: Optional[SolverOptions],
    *,
    vectorized: bool = True,
) -> Iterable[PermutationSolution]:
    """Solve many permutations through the batched core, chunk by chunk."""
    if not vectorized:
        for permutation in permutations:
            yield _solve(spec, permutation, capacity_elements, options)
        return
    for begin in range(0, len(permutations), BATCH_CHUNK):
        chunk = permutations[begin : begin + BATCH_CHUNK]
        for permutation, (config, volume) in zip(
            chunk,
            solve_single_level_batch(
                spec, chunk, capacity_elements, options=options
            ),
        ):
            tiles = tuple(config.tiles[i] for i in LOOP_INDICES)
            yield PermutationSolution(tuple(permutation), volume, tiles)


def best_over_pruned_classes(
    spec: ConvSpec,
    capacity_elements: float,
    *,
    options: Optional[SolverOptions] = None,
    vectorized: bool = True,
) -> PermutationSolution:
    """Best single-level solution across the eight pruned representatives."""
    best: Optional[PermutationSolution] = None
    for solution in _solve_chunked(
        spec,
        list(pruned_representatives()),
        capacity_elements,
        options,
        vectorized=vectorized,
    ):
        if best is None or solution.volume < best.volume:
            best = solution
    assert best is not None
    return best


def best_over_all_permutations(
    spec: ConvSpec,
    capacity_elements: float,
    *,
    permutations: Optional[Iterable[Sequence[str]]] = None,
    options: Optional[SolverOptions] = None,
    vectorized: bool = True,
) -> Tuple[PermutationSolution, int]:
    """Best single-level solution across an arbitrary set of permutations.

    ``permutations`` defaults to all 5040; pass a subset (e.g. a random
    sample) to bound the runtime.  Returns the best solution and the number
    of permutations examined.  With ``vectorized`` (the default) the
    permutations are solved in :data:`BATCH_CHUNK`-sized stacks through
    :func:`~repro.core.solver.solve_single_level_batch`, which generates
    and screens one shared multistart pool per chunk instead of running
    the full scalar multistart for every permutation.
    """
    candidates = (
        list(all_permutations()) if permutations is None else [tuple(p) for p in permutations]
    )
    best: Optional[PermutationSolution] = None
    count = 0
    for solution in _solve_chunked(
        spec, candidates, capacity_elements, options, vectorized=vectorized
    ):
        count += 1
        if best is None or solution.volume < best.volume:
            best = solution
    assert best is not None
    return best, count


def sample_permutations(count: int, *, seed: int = 0) -> List[Tuple[str, ...]]:
    """A deterministic random sample of distinct permutations."""
    rng = np.random.default_rng(seed)
    everything = list(all_permutations())
    indices = rng.choice(len(everything), size=min(count, len(everything)), replace=False)
    return [everything[int(i)] for i in indices]


def verify_pruning(
    spec: ConvSpec,
    capacity_elements: float,
    *,
    sample_size: Optional[int] = 120,
    seed: int = 0,
    options: Optional[SolverOptions] = None,
) -> PruningVerification:
    """Check that the pruned classes dominate a (sampled or full) permutation set.

    With ``sample_size=None`` every one of the 5040 permutations is
    optimized — this is the configuration used by the dedicated pruning
    benchmark; the default random sample keeps the check fast for tests.
    """
    start = time.perf_counter()
    solver_options = options or SolverOptions(multistarts=1, maxiter=60)
    pruned = best_over_pruned_classes(spec, capacity_elements, options=solver_options)
    if sample_size is None:
        permutations: Optional[List[Tuple[str, ...]]] = None
    else:
        permutations = sample_permutations(sample_size, seed=seed)
        # Always include the pruned representatives' strongest competitors:
        # permutations with n or c innermost (the cases Section 4 argues are
        # dominated).
        permutations.extend(
            [
                ("k", "r", "s", "h", "w", "c", "n"),
                ("k", "r", "s", "h", "w", "n", "c"),
                ("r", "s", "h", "w", "k", "n", "c"),
            ]
        )
    exhaustive, count = best_over_all_permutations(
        spec, capacity_elements, permutations=permutations, options=solver_options
    )
    return PruningVerification(
        spec_name=spec.name,
        pruned_best=pruned,
        exhaustive_best=exhaustive,
        permutations_checked=count,
        elapsed_seconds=time.perf_counter() - start,
    )
