"""AutoTVM-like auto-tuner: template-constrained, ML-guided empirical search.

Table 2 characterizes TVM/AutoTVM as: empirical auto-tuning over a
*limited* template-defined search space, guided by an online-trained ML
cost model (XGBoost), with every candidate actually executed on the target
machine.  The paper runs it with the recommended x86
``conv2d_nchw`` template for 1000 trials per operator.

This module reproduces that tuner against the reproduction's virtual
machine:

* :class:`ConvTemplate` defines the knob space — per-dimension tile-size
  splits restricted to divisors, with a *fixed* loop-order template (this is
  the "limited design-space exploration" of Table 2: permutations are not
  searched),
* :class:`XGBLikeTuner` runs batched epsilon-greedy search guided by the
  from-scratch gradient-boosted-trees model of
  :mod:`repro.baselines.ml_model`, re-trained on all measurements collected
  so far (the AutoTVM strategy),
* every selected candidate is "run on the machine" via
  :func:`repro.sim.perfmodel.virtual_measurement`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import MultiLevelConfig, TilingConfig
from ..core.tensor_spec import ConvSpec, LOOP_INDICES, divisor_tiles
from ..machine.spec import MachineSpec
from ..sim.perfmodel import (
    PerformanceEstimate,
    config_compute_efficiency,
    virtual_measurement,
)
from .ml_model import GradientBoostedTrees, featurize_config

#: Loop-order template of the x86 conv2d_nchw schedule (fixed — not searched).
TEMPLATE_PERMUTATION: Tuple[str, ...] = ("n", "k", "h", "w", "c", "r", "s")

#: Sustained fraction of peak that LLVM-vectorized inner loops reach relative
#: to a hand-written register-tiled microkernel.  Section 12 notes that TVM
#: has no fixed microkernel and that LLVM's back-end transformations often
#: cost significant performance; this is the knob that models it.
TVM_CODEGEN_EFFICIENCY = 0.72

MeasureFn = Callable[[MultiLevelConfig, int], PerformanceEstimate]


@dataclass(frozen=True)
class ConvTemplate:
    """Knob space of the conv2d tuning template.

    The template splits the output-channel, spatial and input-channel
    dimensions into (outer, inner) factors — the classic
    ``tile_co / tile_oh / tile_ow / tile_ci`` knobs — which translate into a
    two-level tiling with the fixed :data:`TEMPLATE_PERMUTATION` loop order.
    """

    spec: ConvSpec
    max_choices_per_knob: int = 10

    def knob_choices(self) -> Dict[str, Tuple[int, ...]]:
        """Divisor menus of the four tiling knobs."""
        spec = self.spec
        return {
            "tile_k": divisor_tiles(spec.out_channels, max_values=self.max_choices_per_knob),
            "tile_h": divisor_tiles(spec.out_height, max_values=self.max_choices_per_knob),
            "tile_w": divisor_tiles(spec.out_width, max_values=self.max_choices_per_knob),
            "tile_c": divisor_tiles(spec.in_channels, max_values=self.max_choices_per_knob),
        }

    def space_size(self) -> int:
        """Number of configurations in the template's search space."""
        size = 1
        for choices in self.knob_choices().values():
            size *= len(choices)
        return size

    def enumerate_knobs(self) -> List[Dict[str, int]]:
        """Every knob assignment in the template space."""
        choices = self.knob_choices()
        keys = list(choices)
        assignments = []
        for combo in itertools.product(*(choices[key] for key in keys)):
            assignments.append(dict(zip(keys, combo)))
        return assignments

    def instantiate(self, knobs: Dict[str, int]) -> MultiLevelConfig:
        """Turn a knob assignment into a two-level tiling configuration."""
        spec = self.spec
        inner = {
            "n": 1,
            "k": knobs["tile_k"],
            "c": knobs["tile_c"],
            "r": spec.kernel_h,
            "s": spec.kernel_w,
            "h": knobs["tile_h"],
            "w": knobs["tile_w"],
        }
        outer = {
            "n": spec.batch,
            "k": spec.out_channels,
            "c": spec.in_channels,
            "r": spec.kernel_h,
            "s": spec.kernel_w,
            "h": spec.out_height,
            "w": spec.out_width,
        }
        return MultiLevelConfig(
            ("L1", "L2"),
            (
                TilingConfig(TEMPLATE_PERMUTATION, inner),
                TilingConfig(TEMPLATE_PERMUTATION, outer),
            ),
        )


@dataclass
class TrialRecord:
    """One measured candidate of the tuning session."""

    knobs: Dict[str, int]
    config: MultiLevelConfig
    gflops: float
    trial_index: int


@dataclass
class TuningResult:
    """Outcome of one AutoTVM-like tuning session."""

    spec_name: str
    best_config: MultiLevelConfig
    best_gflops: float
    best_estimate: PerformanceEstimate
    trials: List[TrialRecord]
    search_seconds: float
    space_size: int

    @property
    def num_trials(self) -> int:
        """Number of candidates actually measured."""
        return len(self.trials)


class XGBLikeTuner:
    """Batched epsilon-greedy tuner guided by a gradient-boosted-trees model.

    Mirrors AutoTVM's XGBTuner loop: measure an initial random batch, fit
    the cost model on everything measured so far, rank the still-unmeasured
    candidates by predicted performance, and measure the next batch taken
    mostly from the top of that ranking (with a fraction of random picks for
    exploration).
    """

    def __init__(
        self,
        spec: ConvSpec,
        machine: MachineSpec,
        *,
        threads: int = 1,
        template: Optional[ConvTemplate] = None,
        measure_fn: Optional[MeasureFn] = None,
        batch_size: int = 16,
        exploration: float = 0.2,
        seed: int = 0,
    ):
        self.spec = spec
        self.machine = machine
        self.threads = threads
        self.template = template or ConvTemplate(spec)
        self.batch_size = max(1, batch_size)
        self.exploration = min(max(exploration, 0.0), 1.0)
        self.seed = seed
        self._measure: MeasureFn = measure_fn or self._default_measure

    def _default_measure(self, config: MultiLevelConfig, trial: int) -> PerformanceEstimate:
        efficiency = config_compute_efficiency(
            self.spec, config, self.machine, base_efficiency=TVM_CODEGEN_EFFICIENCY
        )
        return virtual_measurement(
            self.spec,
            config,
            self.machine,
            threads=self.threads,
            compute_efficiency=efficiency,
            seed=self.seed * 100003 + trial,
        )

    def tune(self, n_trials: int = 200) -> TuningResult:
        """Run the tuning loop for up to ``n_trials`` measurements."""
        start = time.perf_counter()
        rng = np.random.default_rng(self.seed)
        candidates = self.template.enumerate_knobs()
        rng.shuffle(candidates)
        n_trials = min(n_trials, len(candidates))

        features = np.array(
            [
                featurize_config(self.spec, self.template.instantiate(knobs))
                for knobs in candidates
            ]
        )
        measured: List[TrialRecord] = []
        measured_mask = np.zeros(len(candidates), dtype=bool)

        def measure_index(index: int) -> None:
            knobs = candidates[index]
            config = self.template.instantiate(knobs)
            estimate = self._measure(config, len(measured))
            measured.append(TrialRecord(knobs, config, estimate.gflops, len(measured)))
            measured_mask[index] = True

        # Initial random batch.
        initial = min(self.batch_size, n_trials)
        for index in range(initial):
            measure_index(index)

        model = GradientBoostedTrees(n_estimators=40, max_depth=4, seed=self.seed)
        while len(measured) < n_trials:
            train_x = np.array(
                [featurize_config(self.spec, record.config) for record in measured]
            )
            train_y = np.array([record.gflops for record in measured])
            model.fit(train_x, train_y)
            predictions = model.predict(features)
            order = np.argsort(-predictions)
            ranked_unmeasured = [int(i) for i in order if not measured_mask[i]]
            remaining = n_trials - len(measured)
            batch = min(self.batch_size, remaining)
            num_explore = int(round(self.exploration * batch))
            num_exploit = batch - num_explore
            picks = ranked_unmeasured[:num_exploit]
            pool = ranked_unmeasured[num_exploit:]
            if pool and num_explore:
                explore_picks = rng.choice(
                    len(pool), size=min(num_explore, len(pool)), replace=False
                )
                picks.extend(pool[int(i)] for i in explore_picks)
            if not picks:
                break
            for index in picks:
                measure_index(index)

        best = max(measured, key=lambda record: record.gflops)
        best_estimate = self._measure(best.config, -1)
        elapsed = time.perf_counter() - start
        return TuningResult(
            spec_name=self.spec.name,
            best_config=best.config,
            best_gflops=best.gflops,
            best_estimate=best_estimate,
            trials=measured,
            search_seconds=elapsed,
            space_size=self.template.space_size(),
        )


def run_autotvm_like(
    spec: ConvSpec,
    machine: MachineSpec,
    *,
    threads: int = 1,
    n_trials: int = 200,
    seed: int = 0,
) -> TuningResult:
    """Convenience wrapper: tune one operator with default settings."""
    tuner = XGBLikeTuner(spec, machine, threads=threads, seed=seed)
    return tuner.tune(n_trials)
