"""Gradient-boosted regression trees, implemented from scratch.

AutoTVM guides its search with an XGBoost cost model trained online on the
measurements it collects.  XGBoost (and scikit-learn) are not available in
this environment, so this module provides a small, dependency-free
gradient-boosted-trees regressor with the pieces the tuner needs:

* :class:`DecisionTreeRegressor` — CART regression tree with squared-error
  splits, depth and leaf-size limits,
* :class:`GradientBoostedTrees` — stage-wise boosting of regression trees
  on residuals with shrinkage and optional row subsampling,
* :func:`featurize_config` — the feature encoding of a tiling configuration
  used by the AutoTVM-like tuner (log tile sizes, derived footprints and
  ratios).

The implementation is NumPy-vectorized per split search and is easily fast
enough for the few hundred training points a tuning session produces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.config import MultiLevelConfig, TilingConfig
from ..core.cost_model import combined_footprint, tensor_footprint
from ..core.tensor_spec import ConvSpec, LOOP_INDICES


@dataclass
class _TreeNode:
    """Internal node (or leaf) of a regression tree."""

    value: float
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """CART regression tree minimizing squared error.

    Parameters mirror the scikit-learn API subset the booster needs:
    ``max_depth`` limits tree depth, ``min_samples_leaf`` prevents tiny
    leaves, ``max_features`` (fraction) subsamples candidate split features
    per node (adds de-correlation across boosting stages).
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 2,
        max_features: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self._root: Optional[_TreeNode] = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "DecisionTreeRegressor":
        """Fit the tree on a feature matrix and target vector."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2:
            raise ValueError("features must be a 2-D matrix")
        if len(features) != len(targets):
            raise ValueError("features and targets length mismatch")
        if len(features) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self._root = self._build(features, targets, depth=0)
        return self

    def _candidate_features(self, num_features: int) -> np.ndarray:
        if self.max_features is None:
            return np.arange(num_features)
        count = max(1, int(round(self.max_features * num_features)))
        return self.rng.choice(num_features, size=count, replace=False)

    def _build(self, features: np.ndarray, targets: np.ndarray, depth: int) -> _TreeNode:
        node_value = float(targets.mean())
        if (
            depth >= self.max_depth
            or len(targets) < 2 * self.min_samples_leaf
            or np.allclose(targets, targets[0])
        ):
            return _TreeNode(node_value)

        best_feature, best_threshold, best_score = -1, 0.0, np.inf
        base_sse = float(((targets - node_value) ** 2).sum())
        for feature in self._candidate_features(features.shape[1]):
            column = features[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_col = column[order]
            sorted_tgt = targets[order]
            # Candidate split points between distinct consecutive values.
            prefix = np.cumsum(sorted_tgt)
            prefix_sq = np.cumsum(sorted_tgt**2)
            total = prefix[-1]
            total_sq = prefix_sq[-1]
            n = len(sorted_tgt)
            counts = np.arange(1, n)
            left_sse = prefix_sq[:-1] - prefix[:-1] ** 2 / counts
            right_counts = n - counts
            right_sum = total - prefix[:-1]
            right_sse = (total_sq - prefix_sq[:-1]) - right_sum**2 / right_counts
            score = left_sse + right_sse
            valid = (
                (sorted_col[1:] > sorted_col[:-1] + 1e-12)
                & (counts >= self.min_samples_leaf)
                & (right_counts >= self.min_samples_leaf)
            )
            if not valid.any():
                continue
            score = np.where(valid, score, np.inf)
            idx = int(np.argmin(score))
            if score[idx] < best_score:
                best_score = float(score[idx])
                best_feature = int(feature)
                best_threshold = float(0.5 * (sorted_col[idx] + sorted_col[idx + 1]))

        if best_feature < 0 or best_score >= base_sse - 1e-12:
            return _TreeNode(node_value)

        mask = features[:, best_feature] <= best_threshold
        left = self._build(features[mask], targets[mask], depth + 1)
        right = self._build(features[~mask], targets[~mask], depth + 1)
        return _TreeNode(node_value, best_feature, best_threshold, left, right)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        features = np.asarray(features, dtype=float)
        return np.array([self._predict_one(row) for row in features])

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        assert node is not None
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
            assert node is not None
        return node.value


class GradientBoostedTrees:
    """Stage-wise gradient boosting of regression trees (squared loss).

    With squared loss the negative gradient is simply the residual, so each
    stage fits a :class:`DecisionTreeRegressor` to the current residuals and
    the ensemble prediction adds ``learning_rate`` times its output.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 0.15,
        max_depth: int = 4,
        min_samples_leaf: int = 2,
        subsample: float = 0.9,
        max_features: Optional[float] = 0.9,
        seed: int = 0,
    ):
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.max_features = max_features
        self.seed = seed
        self._trees: List[DecisionTreeRegressor] = []
        self._base: float = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostedTrees":
        """Fit the ensemble on a feature matrix and target vector."""
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if len(features) == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = np.random.default_rng(self.seed)
        self._trees = []
        self._base = float(targets.mean())
        predictions = np.full(len(targets), self._base)
        for _ in range(self.n_estimators):
            residuals = targets - predictions
            if self.subsample < 1.0 and len(targets) > 4:
                size = max(2, int(round(self.subsample * len(targets))))
                rows = rng.choice(len(targets), size=size, replace=False)
            else:
                rows = np.arange(len(targets))
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=rng,
            )
            tree.fit(features[rows], residuals[rows])
            predictions = predictions + self.learning_rate * tree.predict(features)
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for a feature matrix."""
        features = np.asarray(features, dtype=float)
        predictions = np.full(len(features), self._base)
        for tree in self._trees:
            predictions = predictions + self.learning_rate * tree.predict(features)
        return predictions

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` has been called."""
        return bool(self._trees)


def featurize_config(
    spec: ConvSpec, config: MultiLevelConfig | TilingConfig
) -> np.ndarray:
    """Feature vector of a tiling configuration for the tuner's cost model.

    Features: log2 tile sizes of every level, log2 footprints of the three
    tensors for the innermost level, log2 combined footprint per level, and
    the index of the permutation's innermost iterator.
    """
    if isinstance(config, TilingConfig):
        levels = [("L1", config)]
    else:
        levels = list(zip(config.levels, config.configs))
    features: List[float] = []
    for _, level_config in levels:
        tiles = level_config.tiles
        features.extend(math.log2(max(1.0, tiles[i])) for i in LOOP_INDICES)
        features.append(
            math.log2(
                max(
                    1.0,
                    combined_footprint(tiles, stride=spec.stride, dilation=spec.dilation),
                )
            )
        )
    inner_tiles = levels[0][1].tiles
    for tensor in ("Out", "In", "Ker"):
        features.append(
            math.log2(
                max(
                    1.0,
                    tensor_footprint(
                        tensor, inner_tiles, stride=spec.stride, dilation=spec.dilation
                    ),
                )
            )
        )
    innermost = levels[0][1].permutation[-1]
    features.append(float(LOOP_INDICES.index(innermost)))
    return np.array(features, dtype=float)
