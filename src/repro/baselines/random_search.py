"""Random-search and grid-search baselines over the tiling space.

These simple searchers exist for ablations: they bound what "no model, just
sampling" achieves on the same virtual machine the other systems are
measured on, and they provide the sampled-configuration pools used by the
model-validation experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.config import MultiLevelConfig
from ..core.tensor_spec import ConvSpec
from ..machine.spec import MachineSpec
from ..sim.perfmodel import (
    PerformanceEstimate,
    virtual_measurement,
    virtual_measurement_batch,
)
from ..workloads.sampling import SamplerOptions, grid_configurations, sample_configurations

MeasureFn = Callable[[MultiLevelConfig, int], PerformanceEstimate]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a sampling-based search."""

    spec_name: str
    method: str
    best_config: MultiLevelConfig
    best_gflops: float
    evaluated: int
    search_seconds: float
    all_gflops: Tuple[float, ...]


def _trial_seed(seed: int, trial: int) -> int:
    """The searchers' per-candidate measurement seed (one protocol, one place)."""
    return seed * 7919 + trial


def _default_measure(
    spec: ConvSpec, machine: MachineSpec, threads: int, seed: int
) -> MeasureFn:
    """Scalar per-configuration measurement (the pre-batching protocol).

    Retained as the reference implementation of the measurement protocol;
    ``tests/test_baselines.py`` pins the batched path against it.
    """

    def measure(config: MultiLevelConfig, trial: int) -> PerformanceEstimate:
        return virtual_measurement(
            spec, config, machine, threads=threads, seed=_trial_seed(seed, trial)
        )

    return measure


def _measure_all(
    spec: ConvSpec,
    machine: MachineSpec,
    configs: Sequence[MultiLevelConfig],
    threads: int,
    seed: int,
    measure_fn: Optional[MeasureFn],
) -> List[PerformanceEstimate]:
    """Measure every sampled configuration.

    With the default virtual machine the whole pool goes through the
    batched measurement path — one stacked cost-table sweep for all
    configurations — while custom ``measure_fn`` callables keep the scalar
    per-configuration protocol.
    """
    if measure_fn is not None:
        return [measure_fn(config, index) for index, config in enumerate(configs)]
    seeds = [_trial_seed(seed, index) for index in range(len(configs))]
    return virtual_measurement_batch(
        spec, configs, machine, threads=threads, seeds=seeds
    )


def _best_of(
    spec: ConvSpec,
    method: str,
    configs: Sequence[MultiLevelConfig],
    estimates: Sequence[PerformanceEstimate],
    started_at: float,
) -> SearchResult:
    best_config: Optional[MultiLevelConfig] = None
    best_gflops = -1.0
    scores: List[float] = []
    for config, estimate in zip(configs, estimates):
        scores.append(estimate.gflops)
        if estimate.gflops > best_gflops:
            best_gflops = estimate.gflops
            best_config = config
    assert best_config is not None
    return SearchResult(
        spec_name=spec.name,
        method=method,
        best_config=best_config,
        best_gflops=best_gflops,
        evaluated=len(configs),
        search_seconds=time.perf_counter() - started_at,
        all_gflops=tuple(scores),
    )


def random_search(
    spec: ConvSpec,
    machine: MachineSpec,
    *,
    threads: int = 1,
    trials: int = 100,
    seed: int = 0,
    measure_fn: Optional[MeasureFn] = None,
) -> SearchResult:
    """Measure ``trials`` uniformly sampled configurations; keep the best."""
    start = time.perf_counter()
    configs = sample_configurations(
        spec, count=trials, options=SamplerOptions(seed=seed)
    )
    estimates = _measure_all(spec, machine, configs, threads, seed, measure_fn)
    return _best_of(spec, "random", configs, estimates, start)


def grid_search(
    spec: ConvSpec,
    machine: MachineSpec,
    permutation: Sequence[str],
    *,
    threads: int = 1,
    per_index: int = 4,
    seed: int = 0,
    measure_fn: Optional[MeasureFn] = None,
) -> SearchResult:
    """Measure a deterministic coordinate grid of single-level configurations."""
    start = time.perf_counter()
    configs = grid_configurations(spec, permutation, per_index=per_index)
    estimates = _measure_all(spec, machine, configs, threads, seed, measure_fn)
    return _best_of(spec, "grid", configs, estimates, start)
