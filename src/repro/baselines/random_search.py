"""Random-search and grid-search baselines over the tiling space.

These simple searchers exist for ablations: they bound what "no model, just
sampling" achieves on the same virtual machine the other systems are
measured on, and they provide the sampled-configuration pools used by the
model-validation experiments.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.config import MultiLevelConfig
from ..core.tensor_spec import ConvSpec
from ..machine.spec import MachineSpec
from ..sim.perfmodel import PerformanceEstimate, virtual_measurement
from ..workloads.sampling import SamplerOptions, grid_configurations, sample_configurations

MeasureFn = Callable[[MultiLevelConfig, int], PerformanceEstimate]


@dataclass(frozen=True)
class SearchResult:
    """Outcome of a sampling-based search."""

    spec_name: str
    method: str
    best_config: MultiLevelConfig
    best_gflops: float
    evaluated: int
    search_seconds: float
    all_gflops: Tuple[float, ...]


def _default_measure(
    spec: ConvSpec, machine: MachineSpec, threads: int, seed: int
) -> MeasureFn:
    def measure(config: MultiLevelConfig, trial: int) -> PerformanceEstimate:
        return virtual_measurement(
            spec, config, machine, threads=threads, seed=seed * 7919 + trial
        )

    return measure


def random_search(
    spec: ConvSpec,
    machine: MachineSpec,
    *,
    threads: int = 1,
    trials: int = 100,
    seed: int = 0,
    measure_fn: Optional[MeasureFn] = None,
) -> SearchResult:
    """Measure ``trials`` uniformly sampled configurations; keep the best."""
    start = time.perf_counter()
    measure = measure_fn or _default_measure(spec, machine, threads, seed)
    configs = sample_configurations(
        spec, count=trials, options=SamplerOptions(seed=seed)
    )
    best_config: Optional[MultiLevelConfig] = None
    best_gflops = -1.0
    scores: List[float] = []
    for index, config in enumerate(configs):
        estimate = measure(config, index)
        scores.append(estimate.gflops)
        if estimate.gflops > best_gflops:
            best_gflops = estimate.gflops
            best_config = config
    assert best_config is not None
    return SearchResult(
        spec_name=spec.name,
        method="random",
        best_config=best_config,
        best_gflops=best_gflops,
        evaluated=len(configs),
        search_seconds=time.perf_counter() - start,
        all_gflops=tuple(scores),
    )


def grid_search(
    spec: ConvSpec,
    machine: MachineSpec,
    permutation: Sequence[str],
    *,
    threads: int = 1,
    per_index: int = 4,
    seed: int = 0,
    measure_fn: Optional[MeasureFn] = None,
) -> SearchResult:
    """Measure a deterministic coordinate grid of single-level configurations."""
    start = time.perf_counter()
    measure = measure_fn or _default_measure(spec, machine, threads, seed)
    configs = grid_configurations(spec, permutation, per_index=per_index)
    best_config: Optional[MultiLevelConfig] = None
    best_gflops = -1.0
    scores: List[float] = []
    for index, config in enumerate(configs):
        estimate = measure(config, index)
        scores.append(estimate.gflops)
        if estimate.gflops > best_gflops:
            best_gflops = estimate.gflops
            best_config = config
    assert best_config is not None
    return SearchResult(
        spec_name=spec.name,
        method="grid",
        best_config=best_config,
        best_gflops=best_gflops,
        evaluated=len(configs),
        search_seconds=time.perf_counter() - start,
        all_gflops=tuple(scores),
    )
