"""Comparator systems: oneDNN-like library, AutoTVM-like tuner, simple searches.

These are the reproduction's stand-ins for the systems the paper compares
against (Section 10, Table 2), plus the exhaustive permutation search used
to verify the Section 4 pruning claim.
"""

from .autotvm_like import (
    ConvTemplate,
    TuningResult,
    XGBLikeTuner,
    TEMPLATE_PERMUTATION,
    run_autotvm_like,
)
from .exhaustive import (
    PermutationSolution,
    PruningVerification,
    best_over_all_permutations,
    best_over_pruned_classes,
    sample_permutations,
    verify_pruning,
)
from .ml_model import DecisionTreeRegressor, GradientBoostedTrees, featurize_config
from .onednn_like import (
    ONEDNN_KERNEL_EFFICIENCY,
    LibrarySchedule,
    OneDnnLikeResult,
    choose_schedule,
    run_onednn_like,
    schedule_library,
)
from .random_search import SearchResult, grid_search, random_search

__all__ = [
    "ConvTemplate",
    "DecisionTreeRegressor",
    "GradientBoostedTrees",
    "LibrarySchedule",
    "ONEDNN_KERNEL_EFFICIENCY",
    "OneDnnLikeResult",
    "PermutationSolution",
    "PruningVerification",
    "SearchResult",
    "TEMPLATE_PERMUTATION",
    "TuningResult",
    "XGBLikeTuner",
    "best_over_all_permutations",
    "best_over_pruned_classes",
    "choose_schedule",
    "featurize_config",
    "grid_search",
    "random_search",
    "run_autotvm_like",
    "run_onednn_like",
    "sample_permutations",
    "schedule_library",
    "verify_pruning",
]
