"""oneDNN-like vendor-library baseline.

Table 2 of the paper characterizes Intel oneDNN as: no auto-tuning, a
*highly optimized* microkernel, and *minimal* design-space exploration — it
"dynamically chooses among a small number of pre-determined tiled code
structures based on the CNN array sizes provided at invocation".

This baseline reproduces exactly that behaviour against the reproduction's
virtual machine:

* a small library of pre-determined blocked schedules (direct convolution
  blocked over output channels / spatial width / input channels, in the
  style of oneDNN's JIT AVX2/AVX-512 direct-conv kernels),
* simple shape-driven heuristics choose among them (no search, no model),
* the microkernel-efficiency knob is set *higher* than MOpt's generated
  microkernel, reflecting years of hand tuning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.config import MultiLevelConfig, TilingConfig
from ..core.microkernel import design_microkernel
from ..core.tensor_spec import ConvSpec, LOOP_INDICES
from ..machine.spec import MachineSpec
from ..sim.perfmodel import PerformanceEstimate, config_compute_efficiency, virtual_measurement

#: Sustained fraction of peak the hand-tuned vendor microkernel reaches on a
#: well-shaped problem (MOpt's generated kernel tops out lower — Section 12).
ONEDNN_KERNEL_EFFICIENCY = 0.87


@dataclass(frozen=True)
class LibrarySchedule:
    """One pre-determined blocked schedule of the vendor library."""

    name: str
    config: MultiLevelConfig
    description: str


def _clamp(tiles: Dict[str, int], spec: ConvSpec) -> Dict[str, int]:
    extents = spec.loop_extents
    return {i: max(1, min(int(tiles[i]), extents[i])) for i in LOOP_INDICES}


def _blocked_config(
    spec: ConvSpec,
    machine: MachineSpec,
    *,
    k_block: int,
    w_block: int,
    c_block: int,
    h_l2: int,
) -> MultiLevelConfig:
    """Build a blocked schedule in the style of a JIT direct convolution.

    The blocking factors are *fixed numbers* chosen once per schedule (this
    is the point of the baseline: the library does not re-derive tile sizes
    from the cache capacities of the machine or the layer shape the way MOpt
    does); the outermost level simply iterates the remaining extents, so
    whether the working set fits in L2/L3 depends on how well the fixed
    blocks happen to match the layer.
    """
    lanes = machine.isa.vector_lanes(machine.dtype_bytes)
    permutation = ("n", "k", "c", "h", "w", "r", "s")
    l1 = _clamp(
        {
            "n": 1,
            "k": k_block,
            "c": c_block,
            "r": spec.kernel_h,
            "s": spec.kernel_w,
            "h": 1,
            "w": w_block,
        },
        spec,
    )
    l2 = _clamp(
        {
            "n": 1,
            "k": max(k_block, 2 * lanes),
            "c": spec.in_channels,
            "r": spec.kernel_h,
            "s": spec.kernel_w,
            "h": h_l2,
            "w": spec.out_width,
        },
        spec,
    )
    l2 = {i: max(l2[i], l1[i]) for i in LOOP_INDICES}
    # No layer-adaptive L3 blocking: the remaining loops simply cover the
    # whole problem (minimal design-space exploration).
    l3 = _clamp(
        {
            "n": spec.batch,
            "k": spec.out_channels,
            "c": spec.in_channels,
            "r": spec.kernel_h,
            "s": spec.kernel_w,
            "h": spec.out_height,
            "w": spec.out_width,
        },
        spec,
    )
    l3 = {i: max(l3[i], l2[i]) for i in LOOP_INDICES}
    return MultiLevelConfig(
        ("L1", "L2", "L3"),
        (
            TilingConfig(permutation, l1),
            TilingConfig(permutation, l2),
            TilingConfig(permutation, l3),
        ),
    )


def schedule_library(spec: ConvSpec, machine: MachineSpec) -> List[LibrarySchedule]:
    """The small set of pre-determined schedules the library chooses from."""
    lanes = machine.isa.vector_lanes(machine.dtype_bytes)
    schedules = [
        LibrarySchedule(
            "direct-wide",
            _blocked_config(
                spec, machine, k_block=2 * lanes, w_block=min(14, spec.out_width),
                c_block=min(64, spec.in_channels), h_l2=min(4, spec.out_height),
            ),
            "wide spatial blocks, two kernel vectors (large-image layers)",
        ),
        LibrarySchedule(
            "direct-deep",
            _blocked_config(
                spec, machine, k_block=4 * lanes, w_block=min(7, spec.out_width),
                c_block=min(spec.in_channels, 128), h_l2=min(7, spec.out_height),
            ),
            "deep channel blocks (late, channel-heavy layers)",
        ),
        LibrarySchedule(
            "direct-1x1",
            _blocked_config(
                spec, machine, k_block=2 * lanes, w_block=min(28, spec.out_width),
                c_block=min(spec.in_channels, 256), h_l2=min(2, spec.out_height),
            ),
            "1x1-convolution schedule (GEMM-like blocking)",
        ),
    ]
    return schedules


def choose_schedule(spec: ConvSpec, machine: MachineSpec) -> LibrarySchedule:
    """Shape-driven heuristic choice among the pre-determined schedules.

    Mirrors how a vendor library dispatches: 1x1 kernels get the GEMM-like
    schedule, channel-heavy small-image layers get deep channel blocking,
    and everything else the generic wide schedule.  No search is involved.
    """
    library = schedule_library(spec, machine)
    by_name = {schedule.name: schedule for schedule in library}
    if spec.kernel_h == 1 and spec.kernel_w == 1:
        return by_name["direct-1x1"]
    if spec.in_channels >= 256 and spec.out_height <= 28:
        return by_name["direct-deep"]
    return by_name["direct-wide"]


def layout_transform_seconds(spec: ConvSpec, machine: MachineSpec, threads: int) -> float:
    """Time spent converting NCHW activations to the library's blocked layout.

    The paper stores all activations in NCHW and all kernels in KCRS, and
    explicitly includes "any time expended in internal layout
    transformations" in every measurement.  oneDNN's JIT convolutions work
    on a blocked layout (``nChw16c``), so on every invocation the input is
    reordered into that layout and the output reordered back; each reorder
    streams the tensor once in and once out of memory.  (The kernel reorder
    is charged to all systems equally as the packing cost.)
    """
    elements = 2.0 * (spec.in_elements + spec.out_elements)
    dram = (
        machine.parallel_dram_bandwidth_gbps
        if threads > 1 and machine.parallel_dram_bandwidth_gbps
        else machine.dram_bandwidth_gbps
    )
    return elements * machine.dtype_bytes / (dram * 1e9)


@dataclass(frozen=True)
class OneDnnLikeResult:
    """Outcome of running the library baseline on one operator."""

    schedule: LibrarySchedule
    estimate: PerformanceEstimate
    layout_transform_seconds: float

    @property
    def gflops(self) -> float:
        """Measured (virtual-machine) performance, including layout reorders."""
        spec_flops = self.estimate.gflops * self.estimate.time_seconds * 1e9
        return spec_flops / (self.estimate.time_seconds + self.layout_transform_seconds) / 1e9


def run_onednn_like(
    spec: ConvSpec,
    machine: MachineSpec,
    *,
    threads: int = 1,
    seed: int = 0,
) -> OneDnnLikeResult:
    """Pick the library schedule for an operator and measure it."""
    schedule = choose_schedule(spec, machine)
    # The vendor microkernel is better than MOpt's generated one; efficiency
    # still degrades for awkward shapes (lane utilization etc.).
    efficiency = config_compute_efficiency(
        spec, schedule.config, machine, base_efficiency=ONEDNN_KERNEL_EFFICIENCY
    )
    estimate = virtual_measurement(
        spec,
        schedule.config,
        machine,
        threads=threads,
        compute_efficiency=efficiency,
        seed=seed,
    )
    reorder = layout_transform_seconds(spec, machine, threads)
    return OneDnnLikeResult(schedule, estimate, reorder)
