"""Stable serialization and content hashing for engine cache keys.

The persistent result cache must key results by *what was asked for*:
the operator shape, the machine description, the strategy and its
settings.  Python's built-in ``hash`` is salted per process and
``repr`` is not guaranteed stable across versions, so this module
provides explicit ``*_to_dict`` / ``*_from_dict`` converters for the
frozen dataclasses involved and a canonical-JSON SHA-256
(:func:`stable_hash`) over the resulting plain structures.

Two conventions matter for correctness:

* :func:`spec_to_dict` can exclude the operator *name*
  (``include_name=False``).  Two layers of a network with identical
  shapes (and identical stride/dilation/padding/dtype) are the same
  optimization problem; hashing without the name is what lets the
  network optimizer and the cache deduplicate them.
* All floats are serialized through ``repr`` -> ``float`` round-trips
  implied by JSON, which is exact for IEEE-754 doubles, so keys are
  bit-stable across runs.
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import json
from typing import Any, Dict, Mapping, Optional

from ..core.config import MultiLevelConfig, TilingConfig
from ..core.optimizer import OptimizerSettings
from ..core.solver import SolverOptions
from ..core.tensor_spec import LOOP_INDICES, ConvSpec
from ..machine.spec import MachineSpec


def canonical_json(payload: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace drift)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def stable_hash(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON rendering of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# ConvSpec
# ----------------------------------------------------------------------
def spec_to_dict(spec: ConvSpec, *, include_name: bool = True) -> Dict[str, Any]:
    """Plain-dict form of a :class:`ConvSpec` (JSON-able, order-stable)."""
    payload = dataclasses.asdict(spec)
    if not include_name:
        payload.pop("name")
    return payload


def spec_from_dict(payload: Mapping[str, Any]) -> ConvSpec:
    """Rebuild a :class:`ConvSpec` from :func:`spec_to_dict` output."""
    return ConvSpec(**dict(payload))


@functools.lru_cache(maxsize=4096)
def spec_shape_key(spec: ConvSpec) -> str:
    """Content hash of an operator's *shape* (name excluded).

    Layers with equal shape keys are interchangeable optimization
    problems; the network optimizer solves each distinct key once.
    Memoized per spec (:class:`ConvSpec` is frozen and hashes by value):
    the serving hot path recomputes shape keys for every layer of every
    request, and repeated requests for the same networks hit the memo.
    """
    return stable_hash(spec_to_dict(spec, include_name=False))


# ----------------------------------------------------------------------
# MachineSpec
# ----------------------------------------------------------------------
def machine_to_dict(machine: MachineSpec) -> Dict[str, Any]:
    """Plain-dict form of a :class:`MachineSpec`, including caches and ISA."""
    return dataclasses.asdict(machine)


def machine_key(machine: MachineSpec) -> str:
    """Content hash of a full machine description."""
    return stable_hash(machine_to_dict(machine))


# ----------------------------------------------------------------------
# OptimizerSettings
# ----------------------------------------------------------------------
def solver_options_to_dict(options: SolverOptions) -> Dict[str, Any]:
    """Plain-dict form of :class:`SolverOptions`."""
    return dataclasses.asdict(options)


def settings_to_dict(settings: OptimizerSettings) -> Dict[str, Any]:
    """Plain-dict form of :class:`OptimizerSettings` (solver included).

    ``class_workers`` is deliberately excluded: it only controls *where*
    the per-class solves run (process-pool fan-out), never *what* they
    compute — results are bitwise-identical at any worker count, so it
    must not perturb cache keys or recorded experiment settings.
    ``dedup_classes`` stays: collapsing pinned-identical classes changes
    how many solves run, and the flag documents which route produced a
    recorded result.
    """
    payload = dataclasses.asdict(settings)
    payload.pop("class_workers", None)
    payload["levels"] = list(settings.levels)
    if settings.permutation_class_names is not None:
        payload["permutation_class_names"] = list(settings.permutation_class_names)
    return payload


def settings_from_dict(payload: Mapping[str, Any]) -> OptimizerSettings:
    """Rebuild :class:`OptimizerSettings` from :func:`settings_to_dict` output.

    Tolerates payloads recorded before (or after) execution-only fields
    like ``class_workers`` existed: unknown keys are dropped rather than
    crashing, and missing fields fall back to dataclass defaults.
    """
    data = dict(payload)
    data["levels"] = tuple(data["levels"])
    if data.get("permutation_class_names") is not None:
        data["permutation_class_names"] = tuple(data["permutation_class_names"])
    data["solver"] = SolverOptions(**data["solver"])
    known = {f.name for f in dataclasses.fields(OptimizerSettings)}
    return OptimizerSettings(**{k: v for k, v in data.items() if k in known})


# ----------------------------------------------------------------------
# Tiling configurations
# ----------------------------------------------------------------------
def config_to_dict(config: MultiLevelConfig) -> Dict[str, Any]:
    """Plain-dict form of a :class:`MultiLevelConfig`."""
    return {
        "levels": list(config.levels),
        "configs": [
            {
                "permutation": list(tiling.permutation),
                "tiles": {i: tiling.tiles[i] for i in LOOP_INDICES},
            }
            for tiling in config.configs
        ],
    }


def config_from_dict(payload: Mapping[str, Any]) -> MultiLevelConfig:
    """Rebuild a :class:`MultiLevelConfig` from :func:`config_to_dict` output."""
    return MultiLevelConfig(
        tuple(payload["levels"]),
        tuple(
            TilingConfig(tuple(entry["permutation"]), dict(entry["tiles"]))
            for entry in payload["configs"]
        ),
    )


def maybe_config_to_dict(config: Optional[MultiLevelConfig]) -> Optional[Dict[str, Any]]:
    """``config_to_dict`` that passes ``None`` through."""
    return None if config is None else config_to_dict(config)


def maybe_config_from_dict(
    payload: Optional[Mapping[str, Any]]
) -> Optional[MultiLevelConfig]:
    """``config_from_dict`` that passes ``None`` through."""
    return None if payload is None else config_from_dict(payload)
