"""Network-level optimization engine: strategies, caching, fan-out.

(The public front door over this engine is :class:`repro.api.Session`;
this package remains the building-block layer it is assembled from.)

This package turns the repo's one-operator-at-a-time optimizers into a
network-level engine with three pieces:

* **Strategies** (:mod:`repro.engine.strategy`) — every comparison
  system (MOpt, the oneDNN-like library, the AutoTVM-like tuner, the
  random/grid samplers) behind one :class:`SearchStrategy` contract,
  ``search(spec, machine) -> StrategyResult``, reachable by name through
  :data:`strategy_registry`.
* **Caching** (:mod:`repro.engine.cache`) — a two-tier
  :class:`ResultCache` (in-memory LRU + atomic on-disk JSON store) keyed
  by a stable content hash of the operator shape, the machine and the
  strategy configuration.  Warm re-runs of a whole network cost lookups,
  not solver time.
* **Network optimization** (:mod:`repro.engine.network`) —
  :class:`NetworkOptimizer` deduplicates identically-shaped layers, fans
  the distinct operators out across a ``concurrent.futures`` thread or
  process pool, and aggregates network totals (predicted time, GFLOPS)
  plus per-layer figures for geomean speedup comparisons.

Usage
-----

Optimize all of ResNet-18 analytically, with a persistent cache so the
second run is served from disk::

    from repro import coffee_lake_i7_9700k
    from repro.engine import NetworkOptimizer, ResultCache

    cache = ResultCache("~/.cache/repro-results")   # or None for in-memory
    optimizer = NetworkOptimizer(
        coffee_lake_i7_9700k(),
        "mopt",
        strategy_options={"threads": 8, "measure": False},
        cache=cache,
    )
    result = optimizer.optimize("resnet18")
    print(result.summary())
    print(result.total_gflops, result.total_time_seconds)

Compare systems through the registry and report geomean speedups::

    from repro.engine import compare_network_strategies

    results = compare_network_strategies(
        "mobilenet",
        coffee_lake_i7_9700k(),
        {"mopt": {"threads": 8}, "onednn": {"threads": 8}},
        cache=cache,
    )
    print(results["mopt"].geomean_speedup_vs(results["onednn"]))

Register a custom strategy and use it like the built-ins::

    from repro.engine import register_strategy

    register_strategy("my-search", MySearchStrategy)
    NetworkOptimizer(machine, "my-search", strategy_options={...})

Strategies must be deterministic in their options plus ``(spec,
machine)`` — that is what makes results safe to cache persistently and
to recompute inside pool workers.
"""

from .cache import (
    CACHE_FORMAT_VERSION,
    STRATEGY_VERSION,
    CacheStats,
    DiskResultStore,
    ResultCache,
    resolve_cache,
    result_cache_key,
)
from .chunk_store import (
    CHUNK_FORMAT_VERSION,
    ChunkedResultStore,
    is_chunked_store,
    merge_result_stores,
    open_result_store,
)
from .network import (
    EXECUTOR_MODES,
    NetworkOptimizer,
    NetworkResult,
    OperatorOutcome,
    OpResult,
    build_network_result,
    compare_network_strategies,
    dedup_specs,
    optimize_network,
    resolve_network,
)
from .serialization import (
    canonical_json,
    config_from_dict,
    config_to_dict,
    machine_to_dict,
    settings_from_dict,
    settings_to_dict,
    spec_from_dict,
    spec_shape_key,
    spec_to_dict,
    stable_hash,
)
from .strategy import (
    AutoTVMStrategy,
    GridSearchStrategy,
    MOptStrategy,
    OneDnnStrategy,
    RandomSearchStrategy,
    SearchStrategy,
    StrategyRegistry,
    StrategyResult,
    UnknownStrategyError,
    available_strategies,
    get_strategy,
    register_strategy,
    strategy_registry,
)

__all__ = [
    "AutoTVMStrategy",
    "CACHE_FORMAT_VERSION",
    "CHUNK_FORMAT_VERSION",
    "CacheStats",
    "ChunkedResultStore",
    "DiskResultStore",
    "EXECUTOR_MODES",
    "GridSearchStrategy",
    "MOptStrategy",
    "NetworkOptimizer",
    "NetworkResult",
    "OneDnnStrategy",
    "OpResult",
    "OperatorOutcome",
    "RandomSearchStrategy",
    "ResultCache",
    "STRATEGY_VERSION",
    "SearchStrategy",
    "StrategyRegistry",
    "StrategyResult",
    "UnknownStrategyError",
    "available_strategies",
    "build_network_result",
    "canonical_json",
    "compare_network_strategies",
    "config_from_dict",
    "config_to_dict",
    "dedup_specs",
    "get_strategy",
    "is_chunked_store",
    "resolve_network",
    "machine_to_dict",
    "merge_result_stores",
    "open_result_store",
    "optimize_network",
    "register_strategy",
    "resolve_cache",
    "result_cache_key",
    "settings_from_dict",
    "settings_to_dict",
    "spec_from_dict",
    "spec_shape_key",
    "spec_to_dict",
    "stable_hash",
]
