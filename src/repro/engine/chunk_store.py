"""Chunked, compacting on-disk result store: millions of entries, O(chunks) inodes.

:class:`~repro.engine.cache.DiskResultStore` keeps one ``<key>.json``
inode per entry — fine for a workstation cache, fatal for the
thousand-machine sweeps the ROADMAP asks for (10^6 entries would mean
10^6 inodes, and every at-cap ``put`` a full directory rescan).
:class:`ChunkedResultStore` is the log-structured replacement, in the
style of Hub's ``Chunk``/``BytePositionsEncoder``:

* **Appends, not files.**  Entries are framed records appended to the
  *active* chunk file (``chunk-00000001.bin``): a fixed header
  (key length, payload length, CRC-32 of key+payload) followed by the
  key and the JSON payload bytes.  A 100k-entry store is ~100 chunk
  files, not 100k inodes.
* **In-chunk byte-range index.**  When the active chunk reaches its
  bound (``max_chunk_bytes`` / ``max_chunk_entries``) it is *sealed*:
  a sidecar ``chunk-00000001.idx`` records every record's key, byte
  offset and length (three parallel arrays — the byte-positions
  encoding), written atomically.  Opening a store loads sidecars for
  sealed chunks and only ever byte-scans chunks that lack one (the
  active chunk, or chunks orphaned by a crash — which are healed with
  a fresh sidecar on the way in).
* **Compacting manifest.**  ``chunks.manifest`` (deliberately not
  ``*.json``, so a mis-pointed :class:`DiskResultStore` never slurps it
  as an entry) tracks the sealed-chunk generation.  Overwritten keys
  leave *dead* records behind; once a sealed chunk is mostly dead its
  live records are migrated to the active chunk and the file deleted
  (``compactions`` counter, ``cache.compactions`` health counter).
* **Chunk-granularity eviction.**  ``max_entries`` evicts the oldest
  sealed chunks wholesale (append order approximates LRU for a result
  cache, where re-puts are rare) down to ~90% of cap — there is no
  per-put directory scan at all.
* **Same reliability contract as the JSON store.**  A torn tail (a
  writer that died mid-append) is detected by the CRC at open, counted
  as quarantined (``cache.quarantined``) and truncated away; a corrupt
  record found by ``get`` becomes a clean miss the same way.  Write
  failures degrade the store to memory-only mode exactly like
  :class:`DiskResultStore` (``cache.write_errors``/``cache.degraded``),
  so :class:`~repro.engine.cache.ResultCache` keeps its semantics
  unchanged no matter which backend is underneath.

Concurrency: the store is thread-safe within one process (one lock
around index/append state).  Across processes it is single-writer,
many-reader: sealed chunks are immutable, so serving replicas may open
a merged store read-only while one producer appends — the fleet-wide
"warm fabric" is built by :func:`merge_result_stores`, which
concatenates any mix of chunked and one-file-per-entry stores into one
chunked store deduplicated by key (first source wins).
"""

from __future__ import annotations

import errno
import json
import os
import struct
import tempfile
import threading
import warnings
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..reliability import health
from ..reliability.faults import fault_fires, fault_point
from .cache import CACHE_FORMAT_VERSION, DiskResultStore

#: Record frame: little-endian (key length, payload length, CRC-32 of
#: key+payload bytes), then the key, then the JSON payload.
_FRAME = struct.Struct("<III")

#: Keys are content hashes (hex digests); anything longer than this in a
#: frame header means we are reading garbage, not a record.
_MAX_KEY_BYTES = 4096

#: Manifest file name.  Deliberately NOT ``*.json``: a DiskResultStore
#: mistakenly pointed at a chunked root must not parse the manifest as a
#: cache entry (and auto-detection keys off this exact name).
MANIFEST_NAME = "chunks.manifest"

#: Format marker of the chunk layout; bump on incompatible changes.
CHUNK_FORMAT_VERSION = 1


@dataclass
class _ChunkInfo:
    """Accounting for one chunk file: total/live records and byte size."""

    entries: int = 0
    live: int = 0
    bytes: int = 0
    sealed: bool = False


@dataclass(frozen=True)
class _Loc:
    """Byte range of one live record's JSON payload."""

    chunk: int
    offset: int
    length: int


class ChunkedResultStore:
    """Append-only chunked store with the :class:`DiskResultStore` API.

    ``get``/``put``/``__contains__``/``__len__``/``clear`` plus the
    reliability counters (``quarantined``, ``write_errors``,
    ``degraded``, ``evictions``) match the JSON store, so
    :class:`~repro.engine.cache.ResultCache` can sit on either backend.

    ``max_entries`` caps *live* entries with chunk-granularity batch
    eviction; ``max_chunk_bytes``/``max_chunk_entries`` bound individual
    chunks; ``durability`` is ``"flush"`` (default — a crash loses at
    most the tail records, which the CRC scan truncates away on the next
    open) or ``"fsync"`` (one fsync per put, the JSON store's cost).
    """

    MAX_WRITE_FAILURES = DiskResultStore.MAX_WRITE_FAILURES
    _DEGRADE_ERRNOS = DiskResultStore._DEGRADE_ERRNOS

    def __init__(
        self,
        root: Union[str, Path],
        *,
        max_entries: Optional[int] = None,
        max_chunk_bytes: int = 4 * 1024 * 1024,
        max_chunk_entries: int = 1024,
        durability: str = "flush",
    ):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        if max_chunk_bytes < 1 or max_chunk_entries < 1:
            raise ValueError("chunk bounds must be >= 1")
        if durability not in ("flush", "fsync"):
            raise ValueError(
                f"durability must be 'flush' or 'fsync', got {durability!r}"
            )
        self.root = Path(root).expanduser()
        self.max_entries = max_entries
        self.max_chunk_bytes = max_chunk_bytes
        if max_entries is not None:
            # Eviction drops *sealed* chunks only — a cap smaller than one
            # chunk would never evict.  Clamp so a capped store always
            # spans several chunks (≥ ~4) before reaching its cap.
            max_chunk_entries = min(max_chunk_entries, max(1, -(-max_entries // 4)))
        self.max_chunk_entries = max_chunk_entries
        self.durability = durability
        self.evictions = 0
        self.quarantined = 0
        self.write_errors = 0
        self.compactions = 0
        self.degraded = False
        self._consecutive_write_failures = 0
        self._warned_degraded = False
        self._lock = threading.RLock()
        self._index: Dict[str, _Loc] = {}
        self._chunks: Dict[int, _ChunkInfo] = {}
        self._active_id: Optional[int] = None
        self._handle = None
        self._next_id = 1
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._open()
        except OSError as error:
            self._note_write_failure(error)

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    def _chunk_path(self, chunk_id: int) -> Path:
        return self.root / f"chunk-{chunk_id:08d}.bin"

    def _idx_path(self, chunk_id: int) -> Path:
        return self.root / f"chunk-{chunk_id:08d}.idx"

    @property
    def _manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    # ------------------------------------------------------------------
    # reliability plumbing (same contract as DiskResultStore)
    # ------------------------------------------------------------------
    def _note_write_failure(self, error: OSError) -> None:
        self.write_errors += 1
        self._consecutive_write_failures += 1
        health.incr("cache.write_errors")
        persistent = (
            error.errno in self._DEGRADE_ERRNOS
            or self._consecutive_write_failures >= self.MAX_WRITE_FAILURES
        )
        if persistent and not self.degraded:
            self.degraded = True
            health.incr("cache.degraded")
        if self.degraded and not self._warned_degraded:
            self._warned_degraded = True
            warnings.warn(
                f"chunked result store at {self.root} degraded to memory-only "
                f"mode after a write failure: {error}",
                RuntimeWarning,
                stacklevel=4,
            )

    def _note_quarantine(self, count: int = 1) -> None:
        self.quarantined += count
        health.incr("cache.quarantined", count)

    # ------------------------------------------------------------------
    # open / recovery
    # ------------------------------------------------------------------
    def _open(self) -> None:
        """Load sealed-chunk indexes, scan the rest, pick the active chunk."""
        manifest = self._read_manifest()
        sealed_ids = set(manifest.get("sealed", {}))
        chunk_ids = sorted(
            int(path.stem.split("-", 1)[1])
            for path in self.root.glob("chunk-*.bin")
            if path.stem.split("-", 1)[1].isdigit()
        )
        for chunk_id in chunk_ids:
            records: Optional[List[Tuple[str, int, int]]] = None
            if chunk_id in sealed_ids:
                records = self._load_idx(chunk_id)
            if records is None:
                records = self._scan_chunk(chunk_id)
                # Heal: a sealed-sized chunk that lost its sidecar in a
                # crash gets one now, so the next open skips the scan.
                if chunk_id != chunk_ids[-1]:
                    self._write_idx(chunk_id, records)
            info = _ChunkInfo(
                entries=len(records),
                live=0,
                bytes=self._chunk_size(chunk_id),
                sealed=chunk_id != chunk_ids[-1],
            )
            self._chunks[chunk_id] = info
            for key, offset, length in records:
                self._place(key, _Loc(chunk_id, offset, length))
        if chunk_ids:
            self._next_id = chunk_ids[-1] + 1
            last = chunk_ids[-1]
            info = self._chunks[last]
            if (
                info.bytes >= self.max_chunk_bytes
                or info.entries >= self.max_chunk_entries
            ):
                self._seal(last)
            else:
                self._active_id = last
        self._next_id = max(self._next_id, int(manifest.get("next_id", 1)))

    def _place(self, key: str, loc: _Loc) -> None:
        """Point the index at ``loc``, marking any older record dead."""
        old = self._index.get(key)
        if old is not None:
            self._chunks[old.chunk].live -= 1
        self._index[key] = loc
        self._chunks[loc.chunk].live += 1

    def _chunk_size(self, chunk_id: int) -> int:
        try:
            return self._chunk_path(chunk_id).stat().st_size
        except OSError:
            return 0

    def _read_manifest(self) -> Dict[str, Any]:
        try:
            payload = json.loads(self._manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CHUNK_FORMAT_VERSION
        ):
            return {}
        sealed = payload.get("sealed", {})
        return {
            "sealed": {int(k): v for k, v in sealed.items()}
            if isinstance(sealed, dict)
            else {},
            "next_id": payload.get("next_id", 1),
        }

    def _write_manifest(self) -> None:
        payload = {
            "version": CHUNK_FORMAT_VERSION,
            "entry_version": CACHE_FORMAT_VERSION,
            "next_id": self._next_id,
            "sealed": {
                str(chunk_id): {"entries": info.entries, "bytes": info.bytes}
                for chunk_id, info in self._chunks.items()
                if info.sealed
            },
        }
        self._atomic_write(
            self._manifest_path, json.dumps(payload, sort_keys=True).encode("utf-8")
        )

    def _atomic_write(self, target: Path, data: bytes) -> None:
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{target.name}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, target)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def _load_idx(self, chunk_id: int) -> Optional[List[Tuple[str, int, int]]]:
        """Records of one sealed chunk from its byte-positions sidecar."""
        try:
            payload = json.loads(
                self._idx_path(chunk_id).read_text(encoding="utf-8")
            )
            keys = payload["keys"]
            offsets = payload["offsets"]
            lengths = payload["lengths"]
            if not (len(keys) == len(offsets) == len(lengths)):
                return None
            return list(zip(keys, map(int, offsets), map(int, lengths)))
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            return None  # caller falls back to a byte scan

    def _write_idx(self, chunk_id: int, records: Sequence[Tuple[str, int, int]]) -> None:
        payload = {
            "version": CHUNK_FORMAT_VERSION,
            "keys": [r[0] for r in records],
            "offsets": [r[1] for r in records],
            "lengths": [r[2] for r in records],
        }
        self._atomic_write(
            self._idx_path(chunk_id),
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    def _scan_chunk(self, chunk_id: int) -> List[Tuple[str, int, int]]:
        """Byte-scan one chunk; truncate (and count) a torn/corrupt tail.

        Chunks are bounded (``max_chunk_bytes``), so reading one whole
        chunk is cheap.  The scan stops at the first record whose frame
        or CRC does not check out — everything before it is intact (the
        file is append-only), everything from it on is the torn tail of
        a writer that died mid-append and is truncated away so future
        appends start from a clean record boundary.
        """
        path = self._chunk_path(chunk_id)
        try:
            data = path.read_bytes()
        except OSError:
            return []
        records: List[Tuple[str, int, int]] = []
        pos = 0
        while pos + _FRAME.size <= len(data):
            key_len, blob_len, crc = _FRAME.unpack_from(data, pos)
            end = pos + _FRAME.size + key_len + blob_len
            if key_len == 0 or key_len > _MAX_KEY_BYTES or end > len(data):
                break
            key_bytes = data[pos + _FRAME.size : pos + _FRAME.size + key_len]
            blob = data[pos + _FRAME.size + key_len : end]
            if zlib.crc32(key_bytes + blob) != crc:
                break
            records.append(
                (
                    key_bytes.decode("utf-8", "replace"),
                    pos + _FRAME.size + key_len,
                    blob_len,
                )
            )
            pos = end
        if pos < len(data):
            # Torn tail: quarantine (count + truncate), keep the prefix.
            self._note_quarantine()
            try:
                with path.open("r+b") as handle:
                    handle.truncate(pos)
            except OSError:
                pass
        return records

    # ------------------------------------------------------------------
    # the store API
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Load one entry's payload, or ``None`` on miss/corruption.

        A record that fails its CRC or JSON parse is dropped from the
        index (quarantined — every later lookup is a clean miss).
        """
        with self._lock:
            loc = self._index.get(key)
            if loc is None:
                return None
            try:
                with self._chunk_path(loc.chunk).open("rb") as handle:
                    handle.seek(loc.offset)
                    blob = handle.read(loc.length)
            except OSError:
                return None
            entry: Any = None
            if len(blob) == loc.length:
                try:
                    entry = json.loads(blob.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    entry = None
            if (
                not isinstance(entry, dict)
                or entry.get("version") != CACHE_FORMAT_VERSION
            ):
                self._drop(key)
                self._note_quarantine()
                return None
            return entry.get("result")

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Append one entry to the active chunk (never raises ``OSError``).

        Write failures are counted and persistent ones degrade the store
        to memory-only mode, exactly like the JSON store.
        """
        entry = {"version": CACHE_FORMAT_VERSION, "key": key, "result": dict(payload)}
        blob = json.dumps(entry, sort_keys=True).encode("utf-8")
        key_bytes = key.encode("utf-8")
        frame = _FRAME.pack(len(key_bytes), len(blob), zlib.crc32(key_bytes + blob))
        with self._lock:
            if self.degraded:
                return
            try:
                fault_point("cache.put_oserror", key=key)
                chunk_id, handle, base = self._active()
                handle.write(frame + key_bytes + blob)
                handle.flush()
                if self.durability == "fsync":
                    os.fsync(handle.fileno())
            except OSError as error:
                self._note_write_failure(error)
                return
            self._consecutive_write_failures = 0
            info = self._chunks[chunk_id]
            info.entries += 1
            info.bytes = base + len(frame) + len(key_bytes) + len(blob)
            self._place(
                key, _Loc(chunk_id, base + len(frame) + len(key_bytes), len(blob))
            )
            if fault_fires("cache.corrupt_entry", key=key):
                # Deterministic chaos: the record that just landed is
                # torn, as if the writer died mid-append.  The index
                # still points at it (the writer never knew), so the
                # next get is a CRC-failed quarantine and the next open
                # truncates the tail.
                try:
                    handle.flush()
                    os.ftruncate(handle.fileno(), info.bytes - 4)
                except OSError:
                    pass
            if (
                info.bytes >= self.max_chunk_bytes
                or info.entries >= self.max_chunk_entries
            ):
                self._seal(chunk_id)
            if self.max_entries is not None and len(self._index) > self.max_entries:
                self._evict_over_cap()
            self._maybe_compact()

    def _active(self):
        """The active chunk's ``(id, append handle, current byte size)``."""
        if self._active_id is None:
            chunk_id = self._next_id
            self._next_id += 1
            self._chunks[chunk_id] = _ChunkInfo()
            self._active_id = chunk_id
            # Creating the file now (not at first append) keeps _open's
            # newest-chunk-is-active logic simple after a clean seal.
            self._chunk_path(chunk_id).touch()
        if self._handle is None:
            self._handle = self._chunk_path(self._active_id).open("ab")
        return self._active_id, self._handle, self._chunks[self._active_id].bytes

    def _seal(self, chunk_id: int) -> None:
        """Freeze one chunk: sidecar index + manifest update."""
        if self._handle is not None and chunk_id == self._active_id:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None
        if chunk_id == self._active_id:
            self._active_id = None
        info = self._chunks[chunk_id]
        info.sealed = True
        records = [
            (key, loc.offset, loc.length)
            for key, loc in self._index.items()
            if loc.chunk == chunk_id
        ]
        records.sort(key=lambda r: r[1])
        try:
            self._write_idx(chunk_id, records)
            self._write_manifest()
        except OSError as error:
            # The data chunk itself is intact; a missing sidecar only
            # costs a rescan at the next open.
            self._note_write_failure(error)

    def _drop(self, key: str) -> None:
        loc = self._index.pop(key, None)
        if loc is not None:
            self._chunks[loc.chunk].live -= 1

    def _evict_over_cap(self) -> None:
        """Evict oldest sealed chunks until live entries reach ~90% of cap.

        Eviction is chunk-granular (append order approximates LRU for a
        content-addressed result cache) and batched: no directory scan,
        no per-put stat storm — dropping whole chunks down to 90% of the
        cap buys ~10% of the cap in puts before the next pass.
        """
        target = -(-self.max_entries * 9 // 10)  # ceil(0.9 * cap)
        for chunk_id in sorted(self._chunks):
            if len(self._index) <= target:
                break
            info = self._chunks[chunk_id]
            if not info.sealed:
                continue  # never evict the chunk being appended to
            victims = [
                key for key, loc in self._index.items() if loc.chunk == chunk_id
            ]
            for key in victims:
                del self._index[key]
            self.evictions += len(victims)
            self._delete_chunk(chunk_id)

    def _delete_chunk(self, chunk_id: int) -> None:
        del self._chunks[chunk_id]
        for path in (self._chunk_path(chunk_id), self._idx_path(chunk_id)):
            try:
                path.unlink()
            except OSError:
                pass
        try:
            self._write_manifest()
        except OSError as error:
            self._note_write_failure(error)

    def _maybe_compact(self) -> None:
        """Compact sealed chunks that are mostly dead records."""
        for chunk_id, info in list(self._chunks.items()):
            if not info.sealed or info.entries < 8:
                continue
            if info.live * 2 <= info.entries:
                self._compact_chunk(chunk_id)

    def compact(self) -> int:
        """Rewrite every sealed chunk holding dead records; returns count."""
        with self._lock:
            compacted = 0
            for chunk_id, info in list(self._chunks.items()):
                if info.sealed and info.live < info.entries:
                    self._compact_chunk(chunk_id)
                    compacted += 1
            return compacted

    def _compact_chunk(self, chunk_id: int) -> None:
        """Migrate one sealed chunk's live records to the active chunk."""
        live = sorted(
            (
                (key, loc)
                for key, loc in self._index.items()
                if loc.chunk == chunk_id
            ),
            key=lambda pair: pair[1].offset,
        )
        try:
            with self._chunk_path(chunk_id).open("rb") as handle:
                for key, loc in live:
                    handle.seek(loc.offset)
                    blob = handle.read(loc.length)
                    self._append_raw(key, blob)
        except OSError as error:
            self._note_write_failure(error)
            return
        self._delete_chunk(chunk_id)
        self.compactions += 1
        health.incr("cache.compactions")

    def _append_raw(self, key: str, blob: bytes) -> None:
        """Append one already-serialized record to the active chunk."""
        key_bytes = key.encode("utf-8")
        frame = _FRAME.pack(len(key_bytes), len(blob), zlib.crc32(key_bytes + blob))
        chunk_id, handle, base = self._active()
        handle.write(frame + key_bytes + blob)
        handle.flush()
        info = self._chunks[chunk_id]
        info.entries += 1
        info.bytes = base + len(frame) + len(key_bytes) + len(blob)
        self._place(
            key, _Loc(chunk_id, base + len(frame) + len(key_bytes), len(blob))
        )
        if (
            info.bytes >= self.max_chunk_bytes
            or info.entries >= self.max_chunk_entries
        ):
            self._seal(chunk_id)

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._index

    def __len__(self) -> int:
        """Live entries — O(1), unlike the JSON store's directory walk."""
        with self._lock:
            return len(self._index)

    def keys(self) -> List[str]:
        """Every live key (snapshot)."""
        with self._lock:
            return list(self._index)

    def items(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Stream ``(key, result payload)`` pairs chunk by chunk, in
        append order — the merge/iteration path, one sequential read per
        chunk instead of one ``open`` per entry."""
        with self._lock:
            by_chunk: Dict[int, List[Tuple[str, _Loc]]] = {}
            for key, loc in self._index.items():
                by_chunk.setdefault(loc.chunk, []).append((key, loc))
        for chunk_id in sorted(by_chunk):
            pairs = sorted(by_chunk[chunk_id], key=lambda p: p[1].offset)
            try:
                with self._chunk_path(chunk_id).open("rb") as handle:
                    for key, loc in pairs:
                        handle.seek(loc.offset)
                        blob = handle.read(loc.length)
                        try:
                            entry = json.loads(blob.decode("utf-8"))
                        except (json.JSONDecodeError, UnicodeDecodeError):
                            continue
                        if (
                            isinstance(entry, dict)
                            and entry.get("version") == CACHE_FORMAT_VERSION
                        ):
                            yield key, entry.get("result")
            except OSError:
                continue

    def clear(self) -> None:
        """Delete every chunk, sidecar and the manifest (root kept)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None
            for chunk_id in list(self._chunks):
                for path in (self._chunk_path(chunk_id), self._idx_path(chunk_id)):
                    try:
                        path.unlink()
                    except OSError:
                        pass
            try:
                self._manifest_path.unlink()
            except OSError:
                pass
            self._index.clear()
            self._chunks.clear()
            self._active_id = None

    def close(self) -> None:
        """Close the append handle (reopened lazily by the next put)."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                except OSError:
                    pass
                self._handle = None

    def flush(self) -> None:
        """Make every appended record visible to other processes."""
        with self._lock:
            if self._handle is not None:
                try:
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                except OSError:
                    pass

    # ------------------------------------------------------------------
    def inode_count(self) -> int:
        """Files currently under the root — the O(chunks) claim, measurable."""
        return sum(1 for _ in self.root.iterdir())

    @property
    def chunk_count(self) -> int:
        with self._lock:
            return len(self._chunks)

    def reliability_stats(self) -> Dict[str, Any]:
        """Degradation + layout counters (superset of the JSON store's)."""
        with self._lock:
            total = sum(info.entries for info in self._chunks.values())
            return {
                "quarantined": self.quarantined,
                "write_errors": self.write_errors,
                "degraded": self.degraded,
                "backend": "chunked",
                "chunks": len(self._chunks),
                "live_entries": len(self._index),
                "dead_entries": total - len(self._index),
                "compactions": self.compactions,
                "evictions": self.evictions,
            }


# ----------------------------------------------------------------------
# backend resolution + merge
# ----------------------------------------------------------------------
def is_chunked_store(root: Union[str, Path]) -> bool:
    """Whether a directory already holds a chunked store's layout."""
    root = Path(root).expanduser()
    if (root / MANIFEST_NAME).exists():
        return True
    try:
        return next(root.glob("chunk-*.bin"), None) is not None
    except OSError:
        return False


def open_result_store(
    path: Union[str, Path],
    *,
    max_entries: Optional[int] = None,
    backend: str = "auto",
) -> Union[DiskResultStore, ChunkedResultStore]:
    """Open the right disk store for ``path``.

    ``backend`` is ``"json"`` (one file per entry), ``"chunked"``, or
    ``"auto"`` (default): an existing chunked layout is detected by its
    manifest/chunk files, anything else opens as the JSON store.  A
    string path may carry an explicit ``chunked:`` / ``json:`` prefix —
    this is how every ``cache=<path>`` front door (Session, CLI
    ``--cache-dir``, ``dse --cache-dir``, the serving endpoint) reaches
    the chunked backend without new plumbing::

        Session(cache="chunked:/var/cache/repro")     # create/open chunked
        python -m repro serve --cache-dir chunked:/var/cache/repro
    """
    if isinstance(path, str):
        for prefix in ("chunked:", "json:"):
            if path.startswith(prefix):
                backend = prefix[:-1]
                path = path[len(prefix):]
                break
    if backend == "auto":
        backend = "chunked" if is_chunked_store(path) else "json"
    if backend == "chunked":
        return ChunkedResultStore(path, max_entries=max_entries)
    if backend == "json":
        return DiskResultStore(path, max_entries=max_entries)
    raise ValueError(
        f"backend must be 'auto', 'json' or 'chunked', got {backend!r}"
    )


def merge_result_stores(
    dest: Union[str, Path, ChunkedResultStore],
    sources: Sequence[Union[str, Path, DiskResultStore, ChunkedResultStore]],
    *,
    max_chunk_bytes: int = 4 * 1024 * 1024,
    max_chunk_entries: int = 1024,
) -> Dict[str, int]:
    """Concatenate result stores into one chunked store, deduped by key.

    Sources may be chunked stores, one-file-per-entry JSON stores, or
    paths to either (auto-detected).  Keys are content hashes, so two
    shards that solved the same (spec, machine, strategy) agree on the
    payload — precedence is deterministic anyway: the first source
    listed wins, later duplicates are skipped.  Returns counters
    (``merged``, ``skipped``, ``sources``).
    """
    if isinstance(dest, ChunkedResultStore):
        dest_store = dest
    else:
        dest_store = ChunkedResultStore(
            dest,
            max_chunk_bytes=max_chunk_bytes,
            max_chunk_entries=max_chunk_entries,
        )
    merged = skipped = 0
    for source in sources:
        if isinstance(source, (DiskResultStore, ChunkedResultStore)):
            store: Union[DiskResultStore, ChunkedResultStore] = source
        else:
            store = open_result_store(source)
        for key, payload in store.items():
            if payload is None or key in dest_store:
                skipped += 1
                continue
            dest_store.put(key, payload)
            merged += 1
    dest_store.flush()
    dest_store.close()
    return {"merged": merged, "skipped": skipped, "sources": len(sources)}
