"""The :class:`SearchStrategy` contract, the comparison-system adapters
and the by-name strategy registry.

Every system of the paper's evaluation — MOpt's analytical search, the
oneDNN-like library dispatch, the AutoTVM-like empirical tuner and the
random/grid sampling baselines — answers the same question: *given one
conv2d operator and one machine, which configuration do you pick and how
fast is it?*  Historically each experiment wired the answer up by hand,
one bespoke code path per system.  This module gives them a single
contract:

    strategy = get_strategy("autotvm", threads=8, trials=200)
    result = strategy.search(spec, machine)     # -> StrategyResult

:class:`StrategyResult` is deliberately plain (floats, a tiling
configuration, a JSON-able ``extras`` mapping) so results round-trip
through the persistent cache of :mod:`repro.engine.cache` and across
process-pool workers unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from ..obs.trace import span
from ..baselines.autotvm_like import ConvTemplate, XGBLikeTuner
from ..baselines.onednn_like import (
    ONEDNN_KERNEL_EFFICIENCY,
    run_onednn_like,
    schedule_library,
)
from ..baselines.random_search import grid_search, random_search
from ..core.config import MultiLevelConfig
from ..core.microkernel import design_microkernel
from ..core.optimizer import MOptOptimizer, OptimizerSettings, fast_settings
from ..core.pruning import pruning_statistics
from ..core.tensor_spec import LOOP_INDICES, ConvSpec
from ..machine.spec import MachineSpec
from ..sim.perfmodel import virtual_measurement
from .serialization import (
    maybe_config_from_dict,
    maybe_config_to_dict,
    settings_to_dict,
)


@dataclass(frozen=True)
class StrategyResult:
    """Uniform outcome of one strategy on one (operator, machine) pair.

    ``gflops`` is the strategy's headline performance figure (measured on
    the shared virtual machine for the empirical systems, or the modeled
    figure when a strategy runs in prediction-only mode); ``time_seconds``
    is the matching execution time, ``search_seconds`` the cost of finding
    the configuration, and ``extras`` strategy-specific JSON-able detail
    (e.g. MOpt-1 vs. MOpt-5 figures, tuner trial counts).
    """

    strategy: str
    spec_name: str
    gflops: float
    time_seconds: float
    search_seconds: float
    best_config: Optional[MultiLevelConfig] = None
    extras: Mapping[str, Any] = field(default_factory=dict)

    def with_spec_name(self, name: str) -> "StrategyResult":
        """Relabeled copy (used when a cached shape serves several layers)."""
        return replace(self, spec_name=name)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form, inverse of :meth:`from_dict`."""
        return {
            "strategy": self.strategy,
            "spec_name": self.spec_name,
            "gflops": float(self.gflops),
            "time_seconds": float(self.time_seconds),
            "search_seconds": float(self.search_seconds),
            "best_config": maybe_config_to_dict(self.best_config),
            "extras": dict(self.extras),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "StrategyResult":
        """Rebuild a result from :meth:`to_dict` output."""
        return cls(
            strategy=payload["strategy"],
            spec_name=payload["spec_name"],
            gflops=float(payload["gflops"]),
            time_seconds=float(payload["time_seconds"]),
            search_seconds=float(payload["search_seconds"]),
            best_config=maybe_config_from_dict(payload.get("best_config")),
            extras=dict(payload.get("extras", {})),
        )


@runtime_checkable
class SearchStrategy(Protocol):
    """Common contract of every comparison system.

    Implementations must be deterministic functions of their constructor
    options plus ``(spec, machine)`` — that is what makes results safe to
    cache persistently and to recompute in pool workers — and must expose
    their full configuration through :meth:`cache_token`.
    """

    name: str

    def search(self, spec: ConvSpec, machine: MachineSpec) -> StrategyResult:
        """Pick a configuration for ``spec`` on ``machine`` and rate it."""
        ...

    def cache_token(self) -> Mapping[str, Any]:
        """JSON-able description of every option that affects the result."""
        ...


def _time_from_gflops(spec: ConvSpec, gflops: float) -> float:
    """Execution time implied by a GFLOP/s figure for this operator."""
    return spec.flops / (max(gflops, 1e-12) * 1e9)


# ----------------------------------------------------------------------
# MOpt
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MOptStrategy:
    """Adapter around :class:`~repro.core.optimizer.MOptOptimizer`.

    With ``measure=True`` (the evaluation's configuration) the top-k
    modeled candidates are measured on the virtual machine with seeds
    ``seed + seed_stride * index`` — exactly the Figure 7/8 protocol — and
    ``extras`` carries both the MOpt-1 (best-modeled) and MOpt-5 (best of
    top five by measurement) figures.  With ``measure=False`` the purely
    analytical prediction is reported, which is what network-level
    optimization wants: no measurement in the loop at all.
    """

    name: str = field(default="mopt", init=False)
    settings: Optional[OptimizerSettings] = None
    threads: Optional[int] = None
    measure: bool = True
    seed: int = 0
    seed_stride: int = 17
    top_k: int = 5

    def _resolved_settings(self) -> OptimizerSettings:
        if self.settings is not None:
            return self.settings
        return fast_settings(parallel=True, threads=self.threads)

    def _resolved_threads(self, machine: MachineSpec) -> int:
        settings = self._resolved_settings()
        return self.threads or settings.threads or machine.cores

    def search(self, spec: ConvSpec, machine: MachineSpec) -> StrategyResult:
        settings = self._resolved_settings()
        optimizer = MOptOptimizer(machine, settings)
        result = optimizer.optimize(spec)
        best = result.best
        extras: Dict[str, Any] = {
            "class_name": best.class_name,
            "bottleneck_level": best.bottleneck_level,
            "predicted_gflops": result.predicted_gflops,
            "predicted_time_seconds": best.predicted_time_seconds,
        }
        if self.measure:
            threads = self._resolved_threads(machine)
            measurements = [
                virtual_measurement(
                    spec,
                    candidate.config,
                    machine,
                    threads=threads,
                    seed=self.seed + self.seed_stride * index,
                )
                for index, candidate in enumerate(result.top(self.top_k))
            ]
            candidate_gflops = [float(m.gflops) for m in measurements]
            mopt1 = candidate_gflops[0]
            mopt5 = max(candidate_gflops)
            extras.update(
                {
                    "candidate_gflops": candidate_gflops,
                    "mopt1_gflops": mopt1,
                    "mopt5_gflops": mopt5,
                }
            )
            gflops = mopt5
        else:
            gflops = result.predicted_gflops
        return StrategyResult(
            strategy=self.name,
            spec_name=spec.name,
            gflops=gflops,
            time_seconds=_time_from_gflops(spec, gflops),
            search_seconds=result.search_seconds,
            best_config=best.config,
            extras=extras,
        )

    def cache_token(self) -> Mapping[str, Any]:
        return {
            "settings": settings_to_dict(self._resolved_settings()),
            "threads": self.threads,
            "measure": self.measure,
            "seed": self.seed,
            "seed_stride": self.seed_stride,
            "top_k": self.top_k,
        }

    def characterize(self, spec: ConvSpec, machine: MachineSpec) -> Dict[str, Any]:
        """Table 2 row: derived strengths/limitations of the MOpt system."""
        stats = pruning_statistics()
        microkernel = design_microkernel(machine, spec)
        return {
            "system": "MOpt (this work)",
            "auto_tuning": False,
            "microkernel": (
                f"generated, not highly optimized "
                f"(efficiency ~{microkernel.efficiency:.2f} of peak)"
            ),
            "design_space": (
                "comprehensive: all tile-loop permutations and tile sizes via analytical "
                f"modeling ({stats['total_permutations']} permutations pruned to "
                f"{stats['num_classes']} solved cases per level)"
            ),
            "explored_configurations": stats["total_permutations"],
        }


# ----------------------------------------------------------------------
# oneDNN-like library
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OneDnnStrategy:
    """Adapter around the oneDNN-like library baseline (heuristic dispatch)."""

    name: str = field(default="onednn", init=False)
    threads: int = 1
    seed: int = 0

    def search(self, spec: ConvSpec, machine: MachineSpec) -> StrategyResult:
        with span(
            "strategy.search", strategy=self.name, operator=spec.name
        ) as sp:
            outcome = run_onednn_like(
                spec, machine, threads=self.threads, seed=self.seed
            )
        gflops = outcome.gflops
        return StrategyResult(
            strategy=self.name,
            spec_name=spec.name,
            gflops=gflops,
            time_seconds=_time_from_gflops(spec, gflops),
            search_seconds=sp.elapsed,
            best_config=outcome.schedule.config,
            extras={
                "schedule": outcome.schedule.name,
                "layout_transform_seconds": outcome.layout_transform_seconds,
            },
        )

    def cache_token(self) -> Mapping[str, Any]:
        return {"threads": self.threads, "seed": self.seed}

    def characterize(self, spec: ConvSpec, machine: MachineSpec) -> Dict[str, Any]:
        """Table 2 row: derived strengths/limitations of the library."""
        schedules = schedule_library(spec, machine)
        return {
            "system": "oneDNN (library baseline)",
            "auto_tuning": False,
            "microkernel": (
                f"highly optimized (efficiency ~{ONEDNN_KERNEL_EFFICIENCY:.2f} of peak)"
            ),
            "design_space": (
                f"minimal: {len(schedules)} pre-determined schedules, heuristic dispatch"
            ),
            "explored_configurations": len(schedules),
        }


# ----------------------------------------------------------------------
# AutoTVM-like tuner
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AutoTVMStrategy:
    """Adapter around the AutoTVM-like ML-guided empirical tuner."""

    name: str = field(default="autotvm", init=False)
    threads: int = 1
    trials: int = 200
    seed: int = 0

    def search(self, spec: ConvSpec, machine: MachineSpec) -> StrategyResult:
        tuner = XGBLikeTuner(spec, machine, threads=self.threads, seed=self.seed)
        tuning = tuner.tune(self.trials)
        gflops = tuning.best_gflops
        return StrategyResult(
            strategy=self.name,
            spec_name=spec.name,
            gflops=gflops,
            time_seconds=_time_from_gflops(spec, gflops),
            search_seconds=tuning.search_seconds,
            best_config=tuning.best_config,
            extras={
                "num_trials": tuning.num_trials,
                "space_size": tuning.space_size,
            },
        )

    def cache_token(self) -> Mapping[str, Any]:
        return {"threads": self.threads, "trials": self.trials, "seed": self.seed}

    def characterize(self, spec: ConvSpec, machine: MachineSpec) -> Dict[str, Any]:
        """Table 2 row: derived strengths/limitations of the auto-tuner."""
        template = ConvTemplate(spec)
        return {
            "system": "TVM / AutoTVM (auto-tuner baseline)",
            "auto_tuning": True,
            "microkernel": "n/a (LLVM-vectorized code, no fixed microkernel)",
            "design_space": (
                f"limited: fixed loop-order template, {template.space_size()} knob "
                "settings, auto-tuned by actual execution"
            ),
            "explored_configurations": template.space_size(),
        }


# ----------------------------------------------------------------------
# Sampling baselines
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RandomSearchStrategy:
    """Adapter around uniform random sampling of the tiling space."""

    name: str = field(default="random", init=False)
    threads: int = 1
    trials: int = 100
    seed: int = 0

    def search(self, spec: ConvSpec, machine: MachineSpec) -> StrategyResult:
        outcome = random_search(
            spec, machine, threads=self.threads, trials=self.trials, seed=self.seed
        )
        return StrategyResult(
            strategy=self.name,
            spec_name=spec.name,
            gflops=outcome.best_gflops,
            time_seconds=_time_from_gflops(spec, outcome.best_gflops),
            search_seconds=outcome.search_seconds,
            best_config=outcome.best_config,
            extras={"evaluated": outcome.evaluated},
        )

    def cache_token(self) -> Mapping[str, Any]:
        return {"threads": self.threads, "trials": self.trials, "seed": self.seed}

    def characterize(self, spec: ConvSpec, machine: MachineSpec) -> Dict[str, Any]:
        """Characterization of the sampling ablation (not part of Table 2)."""
        return {
            "system": "random search (ablation)",
            "auto_tuning": True,
            "microkernel": "n/a (no fixed microkernel)",
            "design_space": f"uniform sampling, {self.trials} measured candidates",
            "explored_configurations": self.trials,
        }


@dataclass(frozen=True)
class GridSearchStrategy:
    """Adapter around the deterministic coordinate-grid sampling baseline."""

    name: str = field(default="grid", init=False)
    threads: int = 1
    per_index: int = 4
    seed: int = 0
    permutation: Tuple[str, ...] = LOOP_INDICES

    def search(self, spec: ConvSpec, machine: MachineSpec) -> StrategyResult:
        outcome = grid_search(
            spec,
            machine,
            self.permutation,
            threads=self.threads,
            per_index=self.per_index,
            seed=self.seed,
        )
        return StrategyResult(
            strategy=self.name,
            spec_name=spec.name,
            gflops=outcome.best_gflops,
            time_seconds=_time_from_gflops(spec, outcome.best_gflops),
            search_seconds=outcome.search_seconds,
            best_config=outcome.best_config,
            extras={"evaluated": outcome.evaluated},
        )

    def cache_token(self) -> Mapping[str, Any]:
        return {
            "threads": self.threads,
            "per_index": self.per_index,
            "seed": self.seed,
            "permutation": list(self.permutation),
        }

    def characterize(self, spec: ConvSpec, machine: MachineSpec) -> Dict[str, Any]:
        """Characterization of the grid ablation (not part of Table 2)."""
        return {
            "system": "grid search (ablation)",
            "auto_tuning": True,
            "microkernel": "n/a (no fixed microkernel)",
            "design_space": f"coordinate grid, {self.per_index} points per index",
            "explored_configurations": self.per_index ** len(LOOP_INDICES),
        }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class UnknownStrategyError(KeyError):
    """Raised when a strategy name is not present in the registry."""


class StrategyRegistry:
    """By-name registry of :class:`SearchStrategy` factories.

    A factory is any callable that accepts the strategy's options as
    keyword arguments and returns a strategy instance.  Experiments (and
    pool workers) refer to strategies purely by ``(name, options)``,
    which is what makes fan-out and caching strategy-agnostic.
    """

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[..., SearchStrategy]] = {}

    def register(
        self, name: str, factory: Callable[..., SearchStrategy]
    ) -> Callable[..., SearchStrategy]:
        """Register ``factory`` under ``name`` (returns the factory)."""
        if not name:
            raise ValueError("strategy name must be non-empty")
        self._factories[name] = factory
        return factory

    def create(self, name: str, **options: Any) -> SearchStrategy:
        """Instantiate the strategy registered under ``name``."""
        try:
            factory = self._factories[name]
        except KeyError:
            raise UnknownStrategyError(
                f"unknown strategy {name!r}; available: {self.names()}"
            ) from None
        return factory(**options)

    def names(self) -> Tuple[str, ...]:
        """Registered strategy names, sorted."""
        return tuple(sorted(self._factories))

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def __iter__(self):
        return iter(self.names())


#: The process-wide registry holding the paper's four comparison systems
#: plus the sampling ablations.
strategy_registry = StrategyRegistry()
strategy_registry.register("mopt", MOptStrategy)
strategy_registry.register("onednn", OneDnnStrategy)
strategy_registry.register("autotvm", AutoTVMStrategy)
strategy_registry.register("random", RandomSearchStrategy)
strategy_registry.register("grid", GridSearchStrategy)


def get_strategy(name: str, **options: Any) -> SearchStrategy:
    """Instantiate a registered strategy by name (module-level convenience)."""
    return strategy_registry.create(name, **options)


def available_strategies() -> Tuple[str, ...]:
    """Names currently registered (module-level convenience)."""
    return strategy_registry.names()


def register_strategy(name: str, factory: Callable[..., SearchStrategy]) -> None:
    """Register a new strategy factory in the shared registry."""
    strategy_registry.register(name, factory)
