"""Network-level optimization: dedup, parallel fan-out and aggregation.

The paper's headline claim is that analytical modeling makes
design-space exploration cheap enough to optimize *whole networks* in
seconds.  :class:`NetworkOptimizer` is the repo's realization of that
claim as an API: give it a network (a Table 1 name such as
``"resnet18"`` or any list of :class:`~repro.core.tensor_spec.ConvSpec`)
and a strategy name, and it

1. **deduplicates** identically-shaped operators (content hash of the
   shape, name excluded) so each distinct problem is solved once,
2. consults the optional two-tier :class:`~repro.engine.cache.ResultCache`
   and only solves what is neither in memory nor on disk,
3. **fans the remaining distinct operators out** over a
   ``concurrent.futures`` thread or process pool,
4. aggregates per-layer results into network totals: predicted
   execution time, network GFLOPS and per-layer figures from which
   geomean speedups between strategies are computed.

Pool workers re-instantiate the strategy from ``(name, options)`` via
the registry, so process-based fan-out only ever pickles plain data.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..obs.trace import span
from ..analysis.stats import geometric_mean
from ..core import solve_pool
from ..core.tensor_spec import ConvSpec
from ..machine.spec import MachineSpec
from ..workloads.benchmarks import network_benchmarks
from .cache import ResultCache
from .serialization import spec_shape_key
from .strategy import SearchStrategy, StrategyResult, get_strategy

#: Accepted ``executor`` modes of :class:`NetworkOptimizer`.
EXECUTOR_MODES = ("serial", "thread", "process")


def resolve_network(
    network: Union[str, Sequence[ConvSpec]], *, batch: int = 1
) -> Tuple[str, List[ConvSpec]]:
    """Resolve a network argument into ``(name, operator list)``.

    ``network`` is either a Table 1 network name (resolved through
    :func:`repro.workloads.benchmarks.network_benchmarks`) or an explicit
    operator list (named ``"custom"``).  Raises on empty networks so
    callers fail before queueing/solving anything.
    """
    if isinstance(network, str):
        specs = network_benchmarks(network, batch=batch)
        name = network
    else:
        specs = list(network)
        name = "custom"
    if not specs:
        raise ValueError("network has no operators")
    return name, specs


def dedup_specs(specs: Sequence[ConvSpec]) -> "Dict[str, ConvSpec]":
    """Map shape key -> first operator with that shape (insertion order)."""
    distinct: "Dict[str, ConvSpec]" = {}
    for spec in specs:
        distinct.setdefault(spec_shape_key(spec), spec)
    return distinct


def build_network_result(
    *,
    network: str,
    machine_name: str,
    strategy: str,
    specs: Sequence[ConvSpec],
    solved: Mapping[str, StrategyResult],
    cached_keys: "set",
    wall_seconds: float,
) -> NetworkResult:
    """Assemble per-layer outcomes and aggregates from solved shapes.

    ``solved`` maps shape keys to strategy results; cached or deduped
    results are relabeled to each layer's name.  This is shared by the
    synchronous :class:`NetworkOptimizer` and the async serving
    front-end, which produce results through different execution paths
    but must aggregate identically.
    """
    outcomes: List[OpResult] = []
    for spec in specs:
        shape_key = spec_shape_key(spec)
        result = solved[shape_key]
        if result.spec_name != spec.name:
            result = result.with_spec_name(spec.name)
        outcomes.append(
            OpResult(
                spec=spec,
                result=result,
                cached=shape_key in cached_keys,
                shape_key=shape_key,
            )
        )
    distinct = {spec_shape_key(spec) for spec in specs}
    return NetworkResult(
        network=network,
        machine_name=machine_name,
        strategy=strategy,
        operators=tuple(outcomes),
        distinct_operators=len(distinct),
        cache_hits=len(cached_keys),
        wall_seconds=wall_seconds,
    )


def _search_worker(
    strategy: SearchStrategy,
    spec: ConvSpec,
    machine: MachineSpec,
) -> StrategyResult:
    """Top-level (picklable) pool worker.

    The strategy *instance* is shipped to the worker rather than a
    ``(name, options)`` registry reference: under the ``spawn`` /
    ``forkserver`` start methods a fresh worker only has the built-in
    registrations, so strategies registered at runtime in the parent
    would be unresolvable there.  Pickling the instance only requires
    the strategy class to be importable, which every module-level class
    (including the built-in dataclass adapters) satisfies.
    """
    return strategy.search(spec, machine)


@dataclass(frozen=True)
class OpResult:
    """One operator's result: the unified per-op type of the public API.

    This is both a layer's slice of a :class:`NetworkResult` and the
    return type of single-operator optimization through
    :class:`repro.api.Session` — one result family for core, engine and
    serving (the serving protocol's ``OperatorFigure`` is its wire
    projection).
    """

    spec: ConvSpec
    result: StrategyResult
    cached: bool
    shape_key: str

    @property
    def name(self) -> str:
        """The operator's (layer) name."""
        return self.spec.name

    @property
    def strategy(self) -> str:
        """Name of the strategy that produced the result."""
        return self.result.strategy

    @property
    def gflops(self) -> float:
        """The layer's headline GFLOP/s figure."""
        return self.result.gflops

    @property
    def time_seconds(self) -> float:
        """The layer's predicted/measured execution time."""
        return self.result.time_seconds

    @property
    def search_seconds(self) -> float:
        """Cost of finding the configuration (0-ish for cache hits)."""
        return self.result.search_seconds

    @property
    def best_config(self):
        """The chosen multi-level tiling configuration (may be ``None``)."""
        return self.result.best_config

    def summary(self) -> str:
        """One-line human-readable description."""
        origin = "cache" if self.cached else f"search {self.search_seconds:.2f} s"
        return (
            f"{self.spec.name} via {self.strategy!r}: "
            f"{self.gflops:.1f} GFLOP/s "
            f"({self.time_seconds * 1e3:.3f} ms, {origin})"
        )


#: Historical name of :class:`OpResult` (pre-``repro.api`` unification).
OperatorOutcome = OpResult


@dataclass(frozen=True)
class NetworkResult:
    """Aggregated outcome of optimizing every operator of one network."""

    network: str
    machine_name: str
    strategy: str
    operators: Tuple[OpResult, ...]
    distinct_operators: int
    cache_hits: int
    wall_seconds: float

    @property
    def num_operators(self) -> int:
        """Number of layers (before deduplication)."""
        return len(self.operators)

    @property
    def total_flops(self) -> float:
        """Total floating-point work of the network."""
        return float(sum(o.spec.flops for o in self.operators))

    @property
    def total_time_seconds(self) -> float:
        """Network execution time: sum of per-layer times."""
        return float(sum(o.time_seconds for o in self.operators))

    @property
    def total_gflops(self) -> float:
        """Whole-network throughput implied by the per-layer times."""
        return self.total_flops / max(self.total_time_seconds, 1e-30) / 1e9

    @property
    def total_search_seconds(self) -> float:
        """Total search cost actually paid.

        Cache hits cost nothing, and a shape solved once but shared by
        several layers is counted once — this is the cost of the run,
        not the cost a dedup-less optimizer would have paid.
        """
        seen: set = set()
        total = 0.0
        for o in self.operators:
            if o.cached or o.shape_key in seen:
                continue
            seen.add(o.shape_key)
            total += o.result.search_seconds
        return total

    def gflops_by_layer(self) -> Dict[str, float]:
        """Layer name -> GFLOP/s."""
        return {o.spec.name: o.gflops for o in self.operators}

    def outcome(self, layer: str) -> OpResult:
        """Look one layer up by name."""
        for o in self.operators:
            if o.spec.name == layer:
                return o
        raise KeyError(f"no layer {layer!r} in network {self.network!r}")

    def geomean_speedup_vs(self, other: "NetworkResult") -> float:
        """Geometric-mean per-layer speedup of this result over ``other``.

        Layers are matched by name; both results must cover the same
        layers (the usual case: same network, different strategies).
        """
        mine = self.gflops_by_layer()
        theirs = other.gflops_by_layer()
        if set(mine) != set(theirs):
            raise ValueError(
                f"layer sets differ: {sorted(mine)} vs {sorted(theirs)}"
            )
        return geometric_mean([mine[name] / theirs[name] for name in mine])

    def summary(self) -> str:
        """Short human-readable aggregate description."""
        return (
            f"{self.network} via {self.strategy!r} on {self.machine_name}: "
            f"{self.num_operators} layers ({self.distinct_operators} distinct, "
            f"{self.cache_hits} cache hits), predicted "
            f"{self.total_time_seconds * 1e3:.3f} ms "
            f"({self.total_gflops:.1f} GFLOPS), "
            f"search {self.total_search_seconds:.2f} s, "
            f"wall {self.wall_seconds:.2f} s"
        )


class NetworkOptimizer:
    """Optimize every conv2d operator of a network through one strategy.

    Parameters
    ----------
    machine:
        Target machine description.
    strategy:
        Registry name of the search strategy (``"mopt"``, ``"onednn"``,
        ``"autotvm"``, ``"random"``, ``"grid"`` or anything registered
        later), configured through ``strategy_options``.
    strategy_options:
        Keyword options forwarded to the registry factory.
    cache:
        Optional :class:`~repro.engine.cache.ResultCache`; hits skip the
        search entirely and warm whole-network re-runs become O(lookups).
    executor:
        ``"thread"`` (default), ``"process"`` or ``"serial"``.  The
        serial path is bit-identical to the pooled paths — strategies
        are deterministic — and exists for debugging and tests.
    max_workers:
        Pool width for the pooled modes (default: number of distinct
        operators, capped at 8 and at the CPUs usable by this process).
    """

    def __init__(
        self,
        machine: MachineSpec,
        strategy: Union[str, SearchStrategy] = "mopt",
        *,
        strategy_options: Optional[Mapping[str, Any]] = None,
        cache: Optional[ResultCache] = None,
        executor: str = "thread",
        max_workers: Optional[int] = None,
    ):
        if executor not in EXECUTOR_MODES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_MODES}, got {executor!r}"
            )
        self.machine = machine
        self.strategy_options: Dict[str, Any] = dict(strategy_options or {})
        if isinstance(strategy, str):
            self.strategy_name = strategy
            # Instantiate eagerly so unknown names / bad options fail fast
            # and the cache token is fixed for the optimizer's lifetime.
            self.strategy: SearchStrategy = get_strategy(
                strategy, **self.strategy_options
            )
        else:
            # A ready strategy instance (the repro.api by-object path);
            # options belong to whoever built it.
            if self.strategy_options:
                raise ValueError(
                    "strategy_options only apply to by-name strategies; "
                    "configure the instance instead"
                )
            self.strategy = strategy
            self.strategy_name = strategy.name
        self.cache = cache
        self.executor = executor
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    def optimize(
        self,
        network: Union[str, Sequence[ConvSpec]],
        *,
        batch: int = 1,
    ) -> NetworkResult:
        """Optimize all operators of ``network`` and aggregate the results.

        ``network`` is either a Table 1 network name (resolved through
        :func:`repro.workloads.benchmarks.network_benchmarks`) or an
        explicit operator list.
        """
        with span("network.optimize") as net_span:
            network_name, specs = resolve_network(network, batch=batch)

            # --- 1. deduplicate identical shapes (first occurrence wins).
            distinct = dedup_specs(specs)

            # --- 2. consult the cache for all distinct shapes in one batch.
            solved: Dict[str, StrategyResult] = {}
            cached_keys: set = set()
            pending: List[Tuple[str, ConvSpec]] = []
            cache_keys: Dict[str, str] = {}
            if self.cache is not None:
                cache_keys = {
                    shape_key: self.cache.key_for(spec, self.machine, self.strategy)
                    for shape_key, spec in distinct.items()
                }
                hits = self.cache.get_many(list(cache_keys.values()))
                for shape_key, spec in distinct.items():
                    hit = hits.get(cache_keys[shape_key])
                    if hit is not None:
                        solved[shape_key] = hit
                        cached_keys.add(shape_key)
                    else:
                        pending.append((shape_key, spec))
            else:
                pending = list(distinct.items())

            # --- 3. fan the remaining distinct operators out.
            for shape_key, result in zip(
                (key for key, _ in pending),
                self.solve_specs([spec for _, spec in pending]),
            ):
                solved[shape_key] = result
                if self.cache is not None:
                    self.cache.put(cache_keys[shape_key], result)

        # --- 4. per-layer outcomes (cached/deduped results relabeled).
        # Built outside the span so `wall_seconds` is the span's own final
        # clock — the reported wall and the trace record cannot disagree.
        return build_network_result(
            network=network_name,
            machine_name=self.machine.name,
            strategy=self.strategy_name,
            specs=specs,
            solved=solved,
            cached_keys=cached_keys,
            wall_seconds=net_span.elapsed,
        )

    # ------------------------------------------------------------------
    def solve_specs(self, specs: Sequence[ConvSpec]) -> List[StrategyResult]:
        """Solve ``specs`` serially or through the configured pool, in order.

        This is the raw fan-out primitive (no dedup, no cache): the
        :class:`repro.api.Session` batched path uses it to solve the
        distinct shapes it has already collected across many requests.
        """
        if not specs:
            return []
        # Default pool width is CPU-aware: strategy searches are pure
        # CPU-bound Python, so threads beyond the usable cores only add
        # GIL contention (a 1-core container runs fastest serial).  An
        # explicit ``max_workers`` is a caller contract and still wins.
        workers = self.max_workers or min(
            len(specs), 8, max(1, solve_pool.available_cpus())
        )
        if self.executor == "serial" or workers <= 1 or len(specs) == 1:
            return [self.strategy.search(spec, self.machine) for spec in specs]
        if self.executor == "thread":
            # Threads share the process, hence also the (bounded) intra-op
            # solve pool — one process budget for both fan-out layers.
            pool_cls = ThreadPoolExecutor
            pool_kwargs: Dict[str, Any] = {}
        else:
            # Operator-level worker processes are marked so they never spawn
            # nested per-class pools (``OptimizerSettings.class_workers`` is
            # suppressed inside workers).
            pool_cls = ProcessPoolExecutor
            pool_kwargs = {"initializer": solve_pool.mark_worker}
        with pool_cls(max_workers=workers, **pool_kwargs) as pool:
            futures = [
                pool.submit(_search_worker, self.strategy, spec, self.machine)
                for spec in specs
            ]
            return [future.result() for future in futures]


def optimize_network(
    network: Union[str, Sequence[ConvSpec]],
    machine: MachineSpec,
    *,
    strategy: str = "mopt",
    strategy_options: Optional[Mapping[str, Any]] = None,
    cache: Optional[ResultCache] = None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    batch: int = 1,
) -> NetworkResult:
    """One-shot convenience wrapper around :class:`NetworkOptimizer`."""
    optimizer = NetworkOptimizer(
        machine,
        strategy,
        strategy_options=strategy_options,
        cache=cache,
        executor=executor,
        max_workers=max_workers,
    )
    return optimizer.optimize(network, batch=batch)


def compare_network_strategies(
    network: Union[str, Sequence[ConvSpec]],
    machine: MachineSpec,
    strategies: Mapping[str, Mapping[str, Any]],
    *,
    cache: Optional[ResultCache] = None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    batch: int = 1,
) -> Dict[str, NetworkResult]:
    """Run several strategies over one network and return results by name.

    ``strategies`` maps registry names to their option dicts, e.g.
    ``{"mopt": {"threads": 8}, "onednn": {"threads": 8}}``.  All runs
    share the same cache, so repeated invocations are warm.
    """
    return {
        name: optimize_network(
            network,
            machine,
            strategy=name,
            strategy_options=options,
            cache=cache,
            executor=executor,
            max_workers=max_workers,
            batch=batch,
        )
        for name, options in strategies.items()
    }
