"""Two-tier persistent result cache for search-strategy outcomes.

Design-space exploration is cheap per operator but networks repeat
shapes, experiments repeat networks and services repeat experiments; the
cache makes re-solving an already-seen ``(spec, machine, strategy,
settings)`` combination an O(1) lookup instead of a solver run.

* Tier 1 is an in-memory LRU (bounded ``OrderedDict``) — hit cost is a
  dict lookup.
* Tier 2 is an on-disk JSON store, one file per key under a root
  directory, written atomically (temp file + ``os.replace``) so a
  crashed or concurrent writer can never leave a truncated entry.
  Corrupt entries are **quarantined** (renamed to ``<key>.json.corrupt``
  and subtracted from the LRU accounting) instead of being silently
  re-read forever, and persistent write failures — disk full, read-only
  filesystem — **degrade the store to memory-only mode** with a single
  warning instead of raising ``OSError`` into the middle of a solve.
  Both events are counted on the store (``quarantined``,
  ``write_errors``, ``degraded``) and in
  :mod:`repro.reliability.health` (``cache.quarantined``,
  ``cache.write_errors``, ``cache.degraded``).

Keys are content hashes (:func:`repro.engine.serialization.stable_hash`)
of everything that determines the result: the operator *shape* (name
excluded, so identically-shaped layers share an entry), the full machine
description and the strategy's name + :meth:`cache_token`.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Union

from ..core.tensor_spec import ConvSpec
from ..machine.spec import MachineSpec
from ..reliability import health
from ..reliability.faults import fault_fires, fault_point
from .serialization import machine_to_dict, spec_to_dict, stable_hash
from .strategy import SearchStrategy, StrategyResult

#: Format marker stored in every disk entry; bump on incompatible changes.
CACHE_FORMAT_VERSION = 1

#: Version stamp of the *search and cost-model numerics*, included in every
#: cache key.  Bump whenever a change makes previously cached results stale
#: even though the request payload is unchanged (e.g. cost-model math,
#: solver defaults, virtual-measurement noise).  Version history:
#:
#: 1 — PR 1 (network engine, crc32-stable virtual measurements).
#: 2 — PR 2 (vectorized analytical core: batched solver path is the
#:     default, reseeded-generator measurement noise).
#: 3 — PR 5 (``MachineSpec.peak_gflops`` clamps the core argument to the
#:     machine's core count: results computed with ``threads > cores``
#:     changed).
#: 4 — PR 6 (loss-free screening rework: the mopt round loop is an
#:     epigraph selection solve plus a linear-coordinate ``polish_all``
#:     refine solve from three deterministic starts; per-class tiles and
#:     predicted times moved, and screened ≡ exact by construction).
STRATEGY_VERSION = 4


def result_cache_key(
    spec: ConvSpec, machine: MachineSpec, strategy: SearchStrategy
) -> str:
    """Stable content hash identifying one strategy run.

    The operator name is deliberately excluded: two layers with the same
    shape on the same machine under the same strategy are the same
    problem (callers relabel the cached result's ``spec_name``).
    """
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "strategy_version": STRATEGY_VERSION,
        "spec": spec_to_dict(spec, include_name=False),
        "machine": machine_to_dict(machine),
        "strategy": {"name": strategy.name, "options": dict(strategy.cache_token())},
    }
    return stable_hash(payload)


class DiskResultStore:
    """On-disk JSON store: one ``<key>.json`` file per entry under ``root``.

    ``max_entries`` caps the store's size: when a put would exceed it, the
    least-recently-used entries (by file modification time — reads touch
    their entry) are evicted.  ``None`` keeps the pre-existing unbounded
    behavior.
    """

    #: Consecutive generic write failures tolerated before the store
    #: degrades to memory-only mode.  Environmental errnos (disk full,
    #: read-only filesystem, permission denied, quota) degrade at once.
    MAX_WRITE_FAILURES = 3

    _DEGRADE_ERRNOS = frozenset(
        code
        for code in (
            errno.ENOSPC,
            errno.EROFS,
            errno.EACCES,
            errno.EPERM,
            getattr(errno, "EDQUOT", None),
        )
        if code is not None
    )

    def __init__(self, root: Union[str, Path], *, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 (or None for unbounded)")
        self.root = Path(root).expanduser()
        self.max_entries = max_entries
        self.evictions = 0
        self.quarantined = 0
        self.write_errors = 0
        self.degraded = False
        self._consecutive_write_failures = 0
        self._warned_degraded = False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            # An uncreatable root (read-only parent) must not abort the
            # solve the cache was meant to accelerate.
            self._note_write_failure(error)
        # Approximate entry count so a warm put stays stat-free; the full
        # directory scan only happens when this says the cap is exceeded,
        # and the scan re-synchronizes it.  Overwrites and concurrent
        # writers can make it drift *high* between scans, which merely
        # triggers one eviction pass early (the scan corrects the count).
        self._entry_count = len(self) if max_entries is not None else 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _note_write_failure(self, error: OSError) -> None:
        """Count one failed write; degrade to memory-only when persistent."""
        self.write_errors += 1
        self._consecutive_write_failures += 1
        health.incr("cache.write_errors")
        persistent = (
            error.errno in self._DEGRADE_ERRNOS
            or self._consecutive_write_failures >= self.MAX_WRITE_FAILURES
        )
        if persistent and not self.degraded:
            self.degraded = True
            health.incr("cache.degraded")
        if self.degraded and not self._warned_degraded:
            self._warned_degraded = True
            warnings.warn(
                f"result cache at {self.root} degraded to memory-only mode "
                f"after a write failure: {error}",
                RuntimeWarning,
                stacklevel=4,
            )

    def _quarantine(self, path: Path) -> None:
        """Move one corrupt entry aside so it stops masquerading as data.

        The ``.corrupt`` rename takes the file out of the ``*.json``
        namespace — it no longer counts against ``max_entries`` and is
        never re-read — while keeping the bytes around for post-mortems.
        A store that cannot rename (read-only dir) falls back to
        deletion, and failing that simply reports the miss.
        """
        try:
            os.replace(path, Path(f"{path}.corrupt"))
        except OSError:
            try:
                path.unlink()
            except OSError:
                return  # nothing we can do; the entry stays a miss
        self.quarantined += 1
        health.incr("cache.quarantined")
        if self.max_entries is not None and self._entry_count > 0:
            self._entry_count -= 1

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Load one entry's payload, or ``None`` on miss/corruption.

        Corrupt or format-incompatible entries are quarantined (see
        :meth:`_quarantine`) so every future lookup of the key is a
        clean miss instead of a parse-and-fail loop.
        """
        path = self._path(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except json.JSONDecodeError:
            self._quarantine(path)
            return None
        except (OSError, UnicodeDecodeError) as error:
            if isinstance(error, UnicodeDecodeError):
                self._quarantine(path)
            return None
        if not isinstance(entry, dict) or entry.get("version") != CACHE_FORMAT_VERSION:
            self._quarantine(path)
            return None
        if self.max_entries is not None:
            try:
                os.utime(path)  # mark recently used for LRU eviction
            except OSError:
                pass
        return entry.get("result")

    def put(self, key: str, payload: Mapping[str, Any]) -> None:
        """Atomically persist one entry (temp file + rename).

        Never raises ``OSError`` into the caller's solve: write failures
        are counted, and persistent ones (disk full, read-only) degrade
        the store to memory-only mode with a single warning.
        """
        if self.degraded:
            return
        entry = {"version": CACHE_FORMAT_VERSION, "key": key, "result": dict(payload)}
        target = self._path(key)
        try:
            fault_point("cache.put_oserror", key=key)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{key[:16]}-", suffix=".tmp", dir=self.root
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(entry, handle, sort_keys=True)
                os.replace(tmp_name, target)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError as error:
            self._note_write_failure(error)
            return
        self._consecutive_write_failures = 0
        if fault_fires("cache.corrupt_entry", key=key):
            # Deterministic chaos: the entry that just landed is torn,
            # as if the writer died after the rename but mid-flush.
            target.write_text('{"torn', encoding="utf-8")
        if self.max_entries is not None:
            # The maintained counter replaces the per-put target.exists()
            # stat: overwrites (rare for a content-addressed cache) drift
            # it high, which only triggers the next eviction scan early.
            self._entry_count += 1
            if self._entry_count > self.max_entries:
                self._evict_over_cap()

    def _evict_over_cap(self) -> None:
        """Evict least-recently-touched entries in one batch, to ~90% of cap.

        This is the *only* place that scans the directory.  Evicting down
        to ``ceil(0.9 * max_entries)`` (instead of exactly to cap) buys
        ~10% of the cap in counter headroom, so a store running at
        capacity rescans once per ~``max_entries / 10`` puts rather than
        on every single one.  Concurrent writers may race on the same
        files; a vanished entry is simply treated as already evicted.
        The scan also re-synchronizes the approximate entry counter.
        """
        target = -(-self.max_entries * 9 // 10)  # ceil(0.9 * cap)
        entries = []
        for path in self.root.glob("*.json"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue
        excess = len(entries) - target
        if excess <= 0:
            self._entry_count = len(entries)
            return
        entries.sort(key=lambda pair: pair[0])
        removed = 0
        for _, path in entries[:excess]:
            try:
                path.unlink()
                self.evictions += 1
                removed += 1
            except OSError:
                pass
        self._entry_count = len(entries) - removed

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def keys(self) -> list:
        """Every entry key currently on disk (snapshot)."""
        return [path.stem for path in self.root.glob("*.json")]

    def items(self):
        """Stream ``(key, result payload)`` pairs — the merge/iteration
        path shared with :class:`~repro.engine.chunk_store.ChunkedResultStore`.
        Corrupt entries are skipped (not quarantined: iteration must not
        mutate a store another process may still be writing)."""
        for path in sorted(self.root.glob("*.json")):
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if (
                isinstance(entry, dict)
                and entry.get("version") == CACHE_FORMAT_VERSION
            ):
                yield path.stem, entry.get("result")

    def reliability_stats(self) -> Dict[str, Any]:
        """Degradation counters, in the shape ResultCache reports."""
        return {
            "quarantined": self.quarantined,
            "write_errors": self.write_errors,
            "degraded": self.degraded,
        }

    def clear(self) -> None:
        """Delete every entry (the directory itself is kept)."""
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ResultCache` instance.

    ``coalesced`` counts :meth:`ResultCache.get_or_compute` calls that
    waited on another caller's in-flight computation of the same key
    instead of computing it themselves (single-flight coalescing);
    ``computes`` counts the computations that actually ran.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    coalesced: int = 0
    computes: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses


class _InFlight:
    """One key's in-flight computation: an event plus its outcome."""

    __slots__ = ("event", "result", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: Optional[StrategyResult] = None
        self.error: Optional[BaseException] = None


class ResultCache:
    """In-memory LRU in front of an optional on-disk store.

    ``path=None`` gives a purely in-memory cache; passing a directory
    path enables persistence across processes and sessions.  The disk
    tier is a :class:`DiskResultStore` (one JSON file per entry) or a
    :class:`~repro.engine.chunk_store.ChunkedResultStore` (bounded
    binary chunks — the sweep-scale backend): pass ``backend="chunked"``
    (or a ``"chunked:<dir>"`` path, or an already-constructed store
    instance), and ``backend="auto"`` (default) recognizes an existing
    chunked layout on disk so replicas sharing one warm fabric need no
    extra configuration.  All values are
    :class:`~repro.engine.strategy.StrategyResult` instances and are
    round-tripped through their ``to_dict``/``from_dict`` serialization
    on the disk tier, so a disk hit is bit-identical to a fresh store.
    ``max_disk_entries`` caps the disk tier with LRU eviction (``None``
    leaves it unbounded, the historical behavior).

    The cache is thread-safe: the memory tier and the stats counters are
    guarded by one lock, the disk tier already writes atomically, and
    :meth:`get_or_compute` adds single-flight semantics on top — any
    number of threads (or event-loop tasks delegating to threads) may
    request the same key concurrently and exactly one of them runs the
    computation while the rest wait for its outcome.
    """

    def __init__(
        self,
        path: Optional[Union[str, Path, Any]] = None,
        *,
        memory_entries: Optional[int] = None,
        max_disk_entries: Optional[int] = None,
        backend: str = "auto",
    ):
        # An explicitly passed bound is a caller contract and is pinned;
        # the implicit default (512) may be grown by sweep-style callers
        # via reserve_memory_entries.
        self._memory_entries_pinned = memory_entries is not None
        if memory_entries is None:
            memory_entries = 512
        if memory_entries < 1:
            raise ValueError("memory_entries must be >= 1")
        self.memory_entries = memory_entries
        self._memory: "OrderedDict[str, StrategyResult]" = OrderedDict()
        if path is None:
            self.disk = None
        elif isinstance(path, (str, Path)):
            # Lazy import: chunk_store imports this module at its top.
            from .chunk_store import open_result_store

            self.disk = open_result_store(
                path, max_entries=max_disk_entries, backend=backend
            )
        elif hasattr(path, "get") and hasattr(path, "put"):
            # An already-constructed store (DiskResultStore or
            # ChunkedResultStore) — shared as-is, e.g. one chunked store
            # behind several serving replicas.
            self.disk = path
        else:
            raise TypeError(
                "path must be None, a directory path or a disk store "
                f"instance, got {type(path).__name__}"
            )
        self.stats = CacheStats()
        self._lock = threading.RLock()
        self._inflight: Dict[str, _InFlight] = {}

    def reserve_memory_entries(self, entries: int) -> None:
        """Grow (never shrink) the memory tier's LRU bound.

        Sweep-style callers touch (machines x operators) keys — far more
        than the default bound — and call this on shared caches so warm
        re-runs stay in the memory tier.  A cache whose bound was set
        explicitly at construction is pinned: the caller sized it on
        purpose, and this call leaves it untouched.
        """
        with self._lock:
            if not self._memory_entries_pinned and entries > self.memory_entries:
                self.memory_entries = entries

    @classmethod
    def empty_reliability_stats(cls) -> Dict[str, Any]:
        """The zero-state of :meth:`reliability_stats` — the one shape.

        Cache-less callers (a ``cache=False`` session's stats probe)
        report this instead of fabricating their own dict, so the
        empty-state payload can never drift from the real one.
        """
        return {"quarantined": 0, "write_errors": 0, "degraded": False}

    def reliability_stats(self) -> Dict[str, Any]:
        """Degradation counters of the disk tier (zeros when memory-only).

        ``quarantined`` — corrupt entries moved aside; ``write_errors``
        — failed disk writes; ``degraded`` — whether persistent write
        failures switched the store to memory-only mode.  A chunked
        backend adds its layout counters (``chunks``, ``compactions``,
        ...) on top of this common shape.
        """
        if self.disk is None:
            return self.empty_reliability_stats()
        return self.disk.reliability_stats()

    # ------------------------------------------------------------------
    def key_for(
        self, spec: ConvSpec, machine: MachineSpec, strategy: SearchStrategy
    ) -> str:
        """Content-hash key of one strategy run (see :func:`result_cache_key`)."""
        return result_cache_key(spec, machine, strategy)

    def get(self, key: str) -> Optional[StrategyResult]:
        """Look ``key`` up in memory first, then on disk; ``None`` on miss."""
        with self._lock:
            cached = self._memory.get(key)
            if cached is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                return cached
        if self.disk is not None:
            payload = self.disk.get(key)
            if payload is not None:
                result = StrategyResult.from_dict(payload)
                with self._lock:
                    self._remember(key, result)
                    self.stats.disk_hits += 1
                return result
        with self._lock:
            self.stats.misses += 1
        return None

    def get_many(
        self,
        keys: Sequence[str],
        *,
        memory_only: bool = False,
        record_misses: bool = True,
    ) -> Dict[str, Optional[StrategyResult]]:
        """Batched lookup: one result (or ``None``) per key, in one pass.

        The memory tier is scanned under a single lock acquisition; only
        the keys that miss it go to the disk tier.  This is what the
        network optimizer and the serving front-end use to consult the
        cache for every distinct operator of a request at once.

        ``memory_only=True`` skips the disk tier and does no IO at all —
        misses are returned as ``None`` without being counted in the
        stats (the caller is expected to follow up with a full lookup
        for them), which lets an event loop serve warm requests without
        a thread-pool hop.  ``record_misses=False`` likewise keeps full
        lookups from counting misses, for callers that will immediately
        route the missing keys into :meth:`get_or_compute` (which counts
        the miss itself — without this, every cold serving operator
        would be double-counted).
        """
        found: Dict[str, Optional[StrategyResult]] = {}
        disk_keys: list = []
        with self._lock:
            for key in keys:
                cached = self._memory.get(key)
                if cached is not None:
                    self._memory.move_to_end(key)
                    self.stats.memory_hits += 1
                    found[key] = cached
                else:
                    disk_keys.append(key)
        if memory_only:
            for key in disk_keys:
                found[key] = None
            return found
        for key in disk_keys:
            if self.disk is not None:
                payload = self.disk.get(key)
                if payload is not None:
                    result = StrategyResult.from_dict(payload)
                    with self._lock:
                        self._remember(key, result)
                        self.stats.disk_hits += 1
                    found[key] = result
                    continue
            if record_misses:
                with self._lock:
                    self.stats.misses += 1
            found[key] = None
        return found

    def put(self, key: str, result: StrategyResult) -> None:
        """Store ``result`` in both tiers."""
        with self._lock:
            self._remember(key, result)
            self.stats.stores += 1
        if self.disk is not None:
            self.disk.put(key, result.to_dict())

    def get_or_compute(
        self, key: str, compute: Callable[[], StrategyResult]
    ) -> StrategyResult:
        """Return the cached result for ``key``, computing it at most once.

        Single-flight semantics: when several threads ask for the same
        missing key concurrently, exactly one of them (the *leader*) runs
        ``compute()`` and stores the outcome; the others block until it
        finishes and return the same result (counted in
        ``stats.coalesced``).  If the leader raises, its exception
        propagates to every waiter and the key is released so a later
        call retries.
        """
        while True:
            with self._lock:
                cached = self._memory.get(key)
                if cached is not None:
                    self._memory.move_to_end(key)
                    self.stats.memory_hits += 1
                    return cached
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InFlight()
                    self._inflight[key] = flight
                    leader = True
                else:
                    leader = False
                    self.stats.coalesced += 1
            if not leader:
                flight.event.wait()
                if flight.error is not None:
                    raise flight.error
                if flight.result is not None:
                    return flight.result
                # Leader found nothing to report (should not happen) —
                # retry from the top rather than return a bogus value.
                continue
            try:
                # Leader: check the disk tier before paying for a solve.
                result: Optional[StrategyResult] = None
                if self.disk is not None:
                    payload = self.disk.get(key)
                    if payload is not None:
                        result = StrategyResult.from_dict(payload)
                        with self._lock:
                            self._remember(key, result)
                            self.stats.disk_hits += 1
                if result is None:
                    with self._lock:
                        self.stats.misses += 1
                        self.stats.computes += 1
                    result = compute()
                    self.put(key, result)
                flight.result = result
                return result
            except BaseException as error:
                flight.error = error
                raise
            finally:
                with self._lock:
                    self._inflight.pop(key, None)
                flight.event.set()

    def _remember(self, key: str, result: StrategyResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return self.disk is not None and key in self.disk

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def clear(self, *, disk: bool = False) -> None:
        """Drop the memory tier (and optionally the disk tier)."""
        with self._lock:
            self._memory.clear()
        if disk and self.disk is not None:
            self.disk.clear()


def resolve_cache(
    cache: Union[None, bool, str, Path, ResultCache, Any],
    *,
    memory_entries: Optional[int] = None,
    backend: str = "auto",
) -> Optional[ResultCache]:
    """Resolve the cache argument every front door accepts.

    ``None`` — a fresh in-memory :class:`ResultCache`; ``False`` —
    caching off; a directory path — a persistent cache rooted there
    (``backend`` or a ``"chunked:"``/``"json:"`` path prefix selects the
    disk layout; ``"auto"`` detects an existing chunked store); a disk
    store instance (:class:`DiskResultStore` or
    :class:`~repro.engine.chunk_store.ChunkedResultStore`) — wrapped so
    serving replicas can share one warm chunked fabric; a
    :class:`ResultCache` — shared as-is.  ``memory_entries`` sizes the
    memory tier of caches created here; for a shared instance it is a
    *reservation* (:meth:`ResultCache.reserve_memory_entries`) that
    grows implicitly-sized caches and leaves explicitly-sized ones
    alone.
    """
    if cache is None:
        return ResultCache(memory_entries=memory_entries)
    if cache is False:
        return None
    if isinstance(cache, ResultCache):
        if memory_entries is not None:
            cache.reserve_memory_entries(memory_entries)
        return cache
    if isinstance(cache, (str, Path)) or (
        hasattr(cache, "get") and hasattr(cache, "put")
    ):
        return ResultCache(cache, memory_entries=memory_entries, backend=backend)
    raise TypeError(
        "cache must be None (fresh in-memory), False (disabled), a directory "
        "path, a disk store instance or a ResultCache, "
        f"got {type(cache).__name__}"
    )
