"""``python -m repro`` — the single command line over the Session API.

Subcommands::

    # Optimize workloads (networks, single layers, network/layer refs):
    python -m repro optimize resnet18 --machine i7-9700k
    python -m repro optimize resnet18/R9 Y5 --strategy onednn --json

    # A TCP serving endpoint with graceful drain on shutdown:
    python -m repro serve --machine i7-9700k --port 8763 \
        --cache-dir /tmp/repro-cache --drain-timeout 10

    # The concurrent-client coalescing demo:
    python -m repro demo --clients 8 --networks resnet18 mobilenet

    # Pre-solve workloads into a persistent cache (or audit it), for one
    # preset, several, or every registered machine:
    python -m repro warm --cache-dir /tmp/repro-cache --networks resnet18
    python -m repro warm --cache-dir /tmp/repro-cache --machine all
    python -m repro warm --dry-run

    # Design-space exploration: sweep hypothetical machines and report
    # the Pareto frontier of predicted time vs. hardware cost:
    python -m repro dse --machine i7-9700k --networks resnet18 mobilenet \
        --log2 caches.L2.capacity_bytes=64KiB:1MiB --axis cores=4,8 \
        --progress sweep.jsonl --csv sweep.csv
    python -m repro dse --smoke

    # Quick cold/warm benchmark through the Session API, optionally
    # gated against a baseline payload (nonzero exit on regression):
    python -m repro bench --quick
    python -m repro bench --quick --compare BENCH_optimizer.json --tolerance 25

    # Telemetry of a running serving endpoint (the TCP `stats` verb):
    python -m repro stats 127.0.0.1:8763
    python -m repro stats 127.0.0.1:8763 --prometheus
    python -m repro top 127.0.0.1:8763 --interval 2
    python -m repro top --sweep /tmp/sweep-heartbeats

    # What is registered: machines, strategies, networks:
    python -m repro list

This replaces the per-package entry points (``python -m repro.serving``
remains as a deprecated shim delegating here) and the ad-hoc example
invocations; everything is built on :class:`repro.api.Session`.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .api.session import Session
from .engine.strategy import available_strategies
from .machine.presets import available_machines
from .workloads.benchmarks import network_benchmarks, network_names


def _parse_option(raw: str) -> tuple:
    """One ``key=value`` strategy option; values parse as JSON, else str."""
    if "=" not in raw:
        raise argparse.ArgumentTypeError(
            f"strategy option must look like key=value, got {raw!r}"
        )
    key, value = raw.split("=", 1)
    try:
        return key, json.loads(value)
    except ValueError:
        return key, value


def _add_session_options(
    parser: argparse.ArgumentParser, *, multi_machine: bool = False
) -> None:
    if multi_machine:
        parser.add_argument(
            "--machine",
            nargs="+",
            default=["i7-9700k"],
            choices=available_machines() + ("all",),
            help="machine preset(s) to loop over, or 'all' for every "
            "registered preset",
        )
    else:
        parser.add_argument(
            "--machine",
            default="i7-9700k",
            choices=available_machines(),
            help="machine preset to optimize for",
        )
    parser.add_argument(
        "--strategy",
        default="mopt",
        help=f"search strategy (registered: {', '.join(available_strategies())})",
    )
    parser.add_argument(
        "--threads", type=int, default=8, help="strategy threads option"
    )
    parser.add_argument(
        "--measure",
        action="store_true",
        help="mopt only: measure top-k candidates on the virtual machine "
        "(default: purely analytical prediction)",
    )
    parser.add_argument(
        "--option",
        action="append",
        type=_parse_option,
        default=[],
        metavar="KEY=VALUE",
        help="extra strategy option (repeatable; value parsed as JSON)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result-cache directory; prefix with 'chunked:' "
        "for the chunked sweep-scale store (an existing chunked layout "
        "is auto-detected)",
    )


def _strategy_options(args: argparse.Namespace) -> Dict[str, Any]:
    options: Dict[str, Any] = {}
    if args.threads:
        options["threads"] = args.threads
    if args.strategy == "mopt":
        # The network/serving paths want the purely analytical prediction
        # by default: no virtual measurement in the loop.
        options["measure"] = bool(getattr(args, "measure", False))
    options.update(dict(getattr(args, "option", []) or []))
    return options


def _build_session(
    args: argparse.Namespace, machine: Optional[str] = None, **extra: Any
) -> Session:
    return Session(
        machine if machine is not None else args.machine,
        args.strategy,
        strategy_options=_strategy_options(args),
        cache=args.cache_dir if args.cache_dir else None,
        **extra,
    )


def _add_server_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--queue-depth", type=int, default=64, help="bounded queue depth"
    )
    parser.add_argument(
        "--workers", type=int, default=4, help="concurrent request workers"
    )
    parser.add_argument(
        "--solve-threads", type=int, default=4, help="solver thread-pool width"
    )


# ----------------------------------------------------------------------
# optimize
# ----------------------------------------------------------------------
def _network_payload(result) -> Dict[str, Any]:
    return {
        "kind": "network",
        "network": result.network,
        "machine": result.machine_name,
        "strategy": result.strategy,
        "num_operators": result.num_operators,
        "distinct_operators": result.distinct_operators,
        "cache_hits": result.cache_hits,
        "total_time_seconds": result.total_time_seconds,
        "total_gflops": result.total_gflops,
        "search_seconds": result.total_search_seconds,
        "wall_seconds": result.wall_seconds,
        "layers": {o.name: o.gflops for o in result.operators},
    }


def _op_payload(result) -> Dict[str, Any]:
    return {
        "kind": "operator",
        "operator": result.name,
        "strategy": result.strategy,
        "gflops": result.gflops,
        "time_seconds": result.time_seconds,
        "search_seconds": result.search_seconds,
        "cached": result.cached,
    }


def _run_optimize(args: argparse.Namespace) -> int:
    session = _build_session(
        args,
        executor=args.executor,
        max_workers=args.max_workers,
        trace=getattr(args, "trace", None),
    )
    payloads: List[Dict[str, Any]] = []
    for reference in args.workload:
        workload: Any = reference
        if args.layers is not None and isinstance(reference, str):
            resolved = session.resolve(reference, batch=args.batch)
            if isinstance(resolved, list):
                workload = resolved[: args.layers]
        result = session.optimize(workload, batch=args.batch)
        if hasattr(result, "operators"):  # NetworkResult
            # Relabel truncated/explicit lists back to the reference name.
            payload = _network_payload(result)
            if payload["network"] == "custom" and isinstance(reference, str):
                payload["network"] = reference
            payloads.append(payload)
            if not args.json:
                print(result.summary())
                if args.per_layer:
                    for outcome in result.operators:
                        print("  " + outcome.summary())
        else:
            payloads.append(_op_payload(result))
            if not args.json:
                print(result.summary())
    if args.json:
        out = payloads[0] if len(payloads) == 1 else payloads
        print(json.dumps(out, indent=2, sort_keys=True))
    trace_path = session.export_trace()
    if trace_path is not None and not args.json:
        print(f"trace written to {trace_path}")
    return 0


# ----------------------------------------------------------------------
# serve / demo
# ----------------------------------------------------------------------
async def _run_serve(args: argparse.Namespace) -> int:
    from .engine.cache import ResultCache
    from .machine.presets import get_machine
    from .serving.server import OptimizationServer, ServerConfig, start_tcp_server

    cache = ResultCache(args.cache_dir) if args.cache_dir else ResultCache()
    server = OptimizationServer(
        get_machine(args.machine),
        args.strategy,
        strategy_options=_strategy_options(args),
        cache=cache,
        config=ServerConfig(
            max_queue_depth=args.queue_depth,
            workers=args.workers,
            solve_threads=args.solve_threads,
        ),
    )
    await server.start()
    tcp = await start_tcp_server(server, args.host, args.port)
    for sock in tcp.sockets or ():
        print(f"serving on {sock.getsockname()}", flush=True)
    try:
        await asyncio.Event().wait()  # run until cancelled / Ctrl-C
    except asyncio.CancelledError:
        pass
    finally:
        tcp.close()
        await tcp.wait_closed()
        # Graceful drain: stop admissions, let accepted requests finish
        # within the window, then stop (stragglers are failed).
        print(
            f"draining (up to {args.drain_timeout:.0f}s) ...", flush=True
        )
        await server.stop(drain=True, drain_timeout=args.drain_timeout)
        print("server stopped", flush=True)
    return 0


async def _run_demo(args: argparse.Namespace) -> int:
    from .experiments.serving_demo import run_serving_demo
    from .machine.presets import get_machine

    result = await run_serving_demo(
        machine=get_machine(args.machine),
        clients=args.clients,
        networks=tuple(args.networks),
        strategy=args.strategy,
        strategy_options=_strategy_options(args),
        cache_dir=args.cache_dir,
        layers_per_network=args.layers,
        queue_depth=args.queue_depth,
        workers=args.workers,
        solve_threads=args.solve_threads,
    )
    print(result.text)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    return 0 if result.duplicate_solves == 0 else 1


# ----------------------------------------------------------------------
# warm
# ----------------------------------------------------------------------
def _warm_payload(report) -> Dict[str, Any]:
    return {
        "networks": list(report.networks),
        "distinct_operators": report.distinct_operators,
        "already_cached": report.already_cached,
        "missing": report.missing,
        "solved": report.solved,
        "dry_run": report.dry_run,
        "wall_seconds": report.wall_seconds,
    }


def _run_warm(args: argparse.Namespace) -> int:
    if not args.cache_dir and not args.dry_run:
        # Warming a process-private in-memory cache would burn the full
        # cold-solve cost and persist nothing.
        print(
            "error: warm needs --cache-dir (a persistent store) "
            "unless --dry-run",
            file=sys.stderr,
        )
        return 2
    machines = list(args.machine)
    if "all" in machines:
        machines = list(available_machines())
    payloads: Dict[str, Dict[str, Any]] = {}
    for machine in machines:
        # One disk store serves every preset: cache keys content-hash the
        # machine, so a multi-preset sweep is just this loop.
        session = _build_session(args, machine=machine)
        report = session.warm_cache(
            args.networks, batch=args.batch, dry_run=args.dry_run
        )
        prefix = f"[{machine}] " if len(machines) > 1 else ""
        print(prefix + report.summary())
        payloads[machine] = _warm_payload(report)
    if args.json:
        out = (
            payloads[machines[0]]
            if len(machines) == 1
            else {"machines": payloads}
        )
        print(json.dumps(out, indent=2, sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------
def _current_commit() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _run_bench(args: argparse.Namespace) -> int:
    session = _build_session(args)
    network = args.network
    specs = network_benchmarks(network)
    if args.quick:
        specs = specs[:4]

    print(f"cold {network} ({len(specs)} layers) via {args.strategy!r} ...")
    start = time.perf_counter()
    cold = session.optimize(specs)
    cold_s = time.perf_counter() - start
    print(f"  {cold_s:.2f} s  ({cold.total_gflops:.1f} GFLOPS predicted)")

    print("warm re-run against the cache ...")
    start = time.perf_counter()
    warm = session.optimize(specs)
    warm_s = time.perf_counter() - start
    print(f"  {warm_s * 1e3:.1f} ms  ({warm.cache_hits} cache hits)")

    payload = {
        "commit": _current_commit(),
        "network": network,
        "layers": len(specs),
        "machine": session.machine.name,
        "strategy": session.strategy_name,
        "quick": bool(args.quick),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "total_gflops": cold.total_gflops,
        # Stage names intersect benchmarks/run_bench.py's wall_s section
        # (the default mopt settings equal run_bench's `vectorized`
        # settings), so a run_bench baseline can gate this CLI bench.
        "wall_s": {
            "cold_network_vectorized_s": cold_s,
            "warm_network_s": warm_s,
        },
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    exit_code = 0
    if args.compare:
        from .bench_compare import (
            append_history,
            compare_payloads,
            format_report,
            load_payload,
        )

        try:
            baseline = load_payload(args.compare)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        report = compare_payloads(
            payload, baseline, tolerance_pct=args.tolerance
        )
        print(format_report(report))
        history_path = args.history or str(
            Path(args.compare).resolve().parent / "BENCH_history.jsonl"
        )
        append_history(
            history_path,
            {
                "kind": "repro-bench",
                "time_s": time.time(),
                "commit": payload["commit"],
                "baseline_commit": report["baseline_commit"],
                "quick": payload["quick"],
                "tolerance_pct": report["tolerance_pct"],
                "ok": report["ok"],
                "stages": {
                    stage["stage"]: stage["current_s"]
                    for stage in report["stages"]
                },
                "regressions": report["regressions"],
            },
        )
        print(f"appended history to {history_path}")
        if not report["ok"]:
            exit_code = 1
    return exit_code


# ----------------------------------------------------------------------
# stats / top — telemetry of a running serving endpoint
# ----------------------------------------------------------------------
def _parse_endpoint(endpoint: str) -> Tuple[str, int]:
    host, sep, port = endpoint.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"endpoint must look like HOST:PORT, got {endpoint!r}")
    return host or "127.0.0.1", int(port)


async def _run_stats(args: argparse.Namespace) -> int:
    from .serving.client import TCPServingClient

    try:
        host, port = _parse_endpoint(args.endpoint)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        client = await TCPServingClient.connect(
            host, port, timeout_s=args.timeout
        )
    except (OSError, asyncio.TimeoutError) as error:
        print(
            f"error: cannot connect to {args.endpoint}: {error}",
            file=sys.stderr,
        )
        return 2
    try:
        if args.prometheus:
            text = await client.stats(prometheus=True)
            print(text, end="")
        else:
            print(json.dumps(await client.stats(), indent=2, sort_keys=True))
    finally:
        await client.close()
    return 0


async def _run_top(args: argparse.Namespace) -> int:
    from .obs.top import compute_dashboard, render_dashboard

    iterations: Optional[int] = 1 if args.once else args.iterations

    def show(text: str) -> None:
        if sys.stdout.isatty() and iterations != 1:
            sys.stdout.write("\x1b[2J\x1b[H")
        print(text, flush=True)

    if args.sweep:
        # Sweep mode: no server to poll — render the heartbeat sidecars
        # (the same view as `dse status`, refreshed live).
        from .obs.heartbeat import render_status, status_payload

        shown = 0
        while True:
            show(render_status(status_payload(args.sweep)))
            shown += 1
            if iterations is not None and shown >= iterations:
                return 0
            await asyncio.sleep(args.interval)

    if not args.endpoint:
        print("error: top needs HOST:PORT (or --sweep DIR)", file=sys.stderr)
        return 2
    from .serving.client import TCPServingClient

    try:
        host, port = _parse_endpoint(args.endpoint)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        client = await TCPServingClient.connect(
            host, port, timeout_s=args.timeout
        )
    except (OSError, asyncio.TimeoutError) as error:
        print(
            f"error: cannot connect to {args.endpoint}: {error}",
            file=sys.stderr,
        )
        return 2
    previous: Optional[Dict[str, Any]] = None
    last_poll: Optional[float] = None
    shown = 0
    try:
        while True:
            current = await client.stats()
            now = time.perf_counter()
            interval_s = (now - last_poll) if last_poll is not None else 0.0
            model = compute_dashboard(current, previous, interval_s)
            show(render_dashboard(model, endpoint=args.endpoint))
            previous, last_poll = current, now
            shown += 1
            if iterations is not None and shown >= iterations:
                return 0
            await asyncio.sleep(args.interval)
    finally:
        await client.close()


# ----------------------------------------------------------------------
# dse
# ----------------------------------------------------------------------
_SIZE_SUFFIXES = (
    ("gib", 1024 ** 3),
    ("mib", 1024 ** 2),
    ("kib", 1024),
    ("g", 1024 ** 3),
    ("m", 1024 ** 2),
    ("k", 1024),
)


def _parse_axis_value(text: str) -> Any:
    """One axis value: ``512KiB``/``1M`` sizes, ints, floats, or strings."""
    token = text.strip()
    lowered = token.lower()
    for suffix, scale in _SIZE_SUFFIXES:
        if lowered.endswith(suffix):
            stem = token[: -len(suffix)]
            try:
                return int(float(stem) * scale)
            except ValueError:
                break
    for convert in (int, float):
        try:
            return convert(token)
        except ValueError:
            continue
    return token


def _build_axes(args: argparse.Namespace) -> List[Any]:
    from .dse import axis_grid, axis_log2, axis_values

    axes: List[Any] = []
    for raw in args.axis or []:
        path, sep, values = raw.partition("=")
        if not sep or not values:
            raise ValueError(
                f"--axis must look like PATH=V1,V2,... got {raw!r}"
            )
        axes.append(
            axis_values(path, [_parse_axis_value(v) for v in values.split(",")])
        )
    for raw in args.log2 or []:
        path, sep, bounds = raw.partition("=")
        parts = bounds.split(":")
        if not sep or len(parts) != 2:
            raise ValueError(
                f"--log2 must look like PATH=START:STOP, got {raw!r}"
            )
        axes.append(
            axis_log2(path, _parse_axis_value(parts[0]), _parse_axis_value(parts[1]))
        )
    for raw in args.grid or []:
        path, sep, bounds = raw.partition("=")
        parts = bounds.split(":")
        if not sep or len(parts) != 3:
            raise ValueError(
                f"--grid must look like PATH=START:STOP:STEP, got {raw!r}"
            )
        axes.append(axis_grid(path, *(_parse_axis_value(p) for p in parts)))
    return axes


def _run_dse_merge(args: argparse.Namespace) -> int:
    from .dse import ProgressMismatchError, merge_progress_stores

    if args.cache and not args.cache_out:
        print("error: --cache requires --cache-out", file=sys.stderr)
        return 2
    try:
        report = merge_progress_stores(
            args.out,
            args.stores,
            require_same_sweep=not args.allow_mixed_sweeps,
        )
    except (OSError, ProgressMismatchError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    payload = report.to_json_dict()
    payload["out"] = str(args.out)
    cache_report = None
    if args.cache:
        from .engine import merge_result_stores

        cache_report = merge_result_stores(args.cache_out, args.cache)
        payload["cache"] = dict(cache_report, out=str(args.cache_out))
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"{report.summary()} -> {args.out}")
        if cache_report is not None:
            print(
                f"merged cache: {cache_report['merged']} entries from "
                f"{cache_report['sources']} stores "
                f"({cache_report['skipped']} duplicates) -> {args.cache_out}"
            )
    return 0


def _run_dse_status(args: argparse.Namespace) -> int:
    from .obs.heartbeat import render_status, status_payload

    payload = status_payload(args.directory, stale_after=args.stale_after)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render_status(payload))
    # Automation-friendly verdict: a fleet with hung (stale) or
    # failed/aborted shards exits 3 so CI and cron wrappers can alert
    # without parsing the payload.
    unhealthy = any(
        shard.get("status") in ("failed", "aborted")
        for shard in payload.get("shards", [])
    )
    if payload.get("stale", 0) or unhealthy:
        return 3
    return 0


def _run_trace(args: argparse.Namespace) -> int:
    from .obs.summary import render_summary, summarize
    from .obs.trace import load_jsonl

    records = load_jsonl(args.trace_file)
    summary = summarize(records)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_summary(summary))
    return 0


def _run_dse(args: argparse.Namespace) -> int:
    if getattr(args, "dse_command", None) == "merge":
        return _run_dse_merge(args)
    if getattr(args, "dse_command", None) == "status":
        return _run_dse_status(args)
    from .dse import (
        DesignSpace,
        DesignSpaceError,
        ProgressMismatchError,
        TooManyFailuresError,
        axis_values,
        explore,
        to_json_dict,
        write_csv,
        write_json,
        write_markdown,
    )

    KiB = 1024
    if args.smoke:
        # Tiny space x tiny machine x one small layer: the CI path that
        # proves the whole subsystem (space -> sweep -> frontier ->
        # report) end to end in seconds.  It overrides the space and
        # workload flags, so explicitly combining them is a mistake.
        if args.axis or args.log2 or args.grid or args.networks != ["resnet18"]:
            print(
                "error: --smoke runs a fixed tiny sweep and ignores "
                "--axis/--log2/--grid/--networks; drop --smoke to sweep "
                "your own space",
                file=sys.stderr,
            )
            return 2
        space = DesignSpace(
            "tiny",
            [
                axis_values(
                    "caches.L2.capacity_bytes", [32 * KiB, 64 * KiB]
                ),
                axis_values("cores", [2, 4]),
            ],
            name="dse-smoke",
        )
        workloads: List[str] = ["resnet18/R12"]
    else:
        try:
            axes = _build_axes(args)
            space = DesignSpace(args.machine, axes) if axes else None
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if space is None:
            print(
                "error: dse needs at least one axis, e.g. "
                "--axis caches.L2.capacity_bytes=128KiB,256KiB,512KiB "
                "or --log2 caches.L3.capacity_bytes=2MiB:16MiB "
                "(or use --smoke)",
                file=sys.stderr,
            )
            return 2
        workloads = list(args.networks)

    def _print_progress(done: int, total: int) -> None:
        print(f"  swept {done}/{total} machines", file=sys.stderr, flush=True)

    # Chaos knob: arm the dse.evaluate fault point so one candidate's
    # evaluation raises — the CI proof that a poisoned candidate is
    # recorded as failed while the sweep still exits 0.
    injected = contextlib.nullcontext()
    if args.inject_candidate_failure is not None:
        from .reliability import FaultInjector, activate

        injected = activate(
            FaultInjector().arm(
                "dse.evaluate",
                error=lambda: RuntimeError("injected candidate failure"),
                times=1,
                key=args.inject_candidate_failure or None,
            )
        )
    try:
        with injected:
            result = explore(
                space,
                workloads,
                strategy=args.strategy,
                strategy_options=_strategy_options(args),
                cache=args.cache_dir if args.cache_dir else None,
                batch=args.batch,
                chunk_size=args.chunk_size,
                max_workers=args.max_workers,
                progress=args.progress,
                progress_durability=args.progress_durability,
                on_progress=None if args.json else _print_progress,
                max_failures=args.max_failures,
                shard=args.shard,
            )
    except (
        ValueError,
        DesignSpaceError,
        ProgressMismatchError,
        TooManyFailuresError,
    ) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    objectives = ("total_time_seconds", args.frontier_cost)
    if args.json:
        print(
            json.dumps(
                to_json_dict(result, objectives=objectives),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(result.summary())
        if result.failures:
            print(f"failed candidates ({result.failures}):")
            for outcome in result.failed_outcomes():
                print("  " + outcome.summary())
        frontier = result.frontier(objectives)
        print(f"Pareto frontier ({objectives[0]} vs. {objectives[1]}):")
        for outcome in sorted(frontier, key=lambda o: o.total_time_seconds):
            print("  " + outcome.summary())
        for line in result.sensitivity():
            print("  " + line)
    if args.out:
        print(f"wrote {write_json(result, args.out, objectives=objectives)}")
    if args.csv:
        print(f"wrote {write_csv(result, args.csv, objectives=objectives)}")
    if args.md:
        print(f"wrote {write_markdown(result, args.md, objectives=objectives)}")
    return 0


# ----------------------------------------------------------------------
# list
# ----------------------------------------------------------------------
def _run_list(args: argparse.Namespace) -> int:
    networks = {
        name: [spec.name for spec in network_benchmarks(name)]
        for name in network_names()
    }
    if args.json:
        print(
            json.dumps(
                {
                    "machines": list(available_machines()),
                    "strategies": list(available_strategies()),
                    "networks": networks,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print("machines:   " + ", ".join(available_machines()))
    print("strategies: " + ", ".join(available_strategies()))
    print("networks:")
    for name, layers in networks.items():
        print(f"  {name} ({len(layers)} layers): {', '.join(layers)}")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    optimize = sub.add_parser(
        "optimize", help="optimize networks/operators through a Session"
    )
    optimize.add_argument(
        "workload",
        nargs="+",
        help="network name (resnet18), layer ref (resnet18/R9) or operator (Y5)",
    )
    _add_session_options(optimize)
    optimize.add_argument("--batch", type=int, default=1, help="batch size")
    optimize.add_argument(
        "--layers", type=int, default=None,
        help="truncate network workloads to their first N layers",
    )
    optimize.add_argument(
        "--executor", default="thread", choices=("serial", "thread", "process")
    )
    optimize.add_argument("--max-workers", type=int, default=None)
    optimize.add_argument(
        "--per-layer", action="store_true", help="print one line per layer"
    )
    optimize.add_argument("--json", action="store_true", help="print JSON")
    optimize.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="enable structured tracing and write the JSON-lines trace "
        "here (inspect with `repro trace summary FILE`)",
    )

    serve = sub.add_parser("serve", help="run a TCP optimization endpoint")
    _add_session_options(serve)
    _add_server_options(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8763)
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help="seconds to let accepted requests finish on shutdown",
    )

    demo = sub.add_parser(
        "demo", help="concurrent-client demo over Table 1 networks"
    )
    _add_session_options(demo)
    _add_server_options(demo)
    demo.add_argument("--clients", type=int, default=8)
    demo.add_argument(
        "--networks",
        nargs="+",
        default=["resnet18", "mobilenet"],
        help="Table 1 networks the clients request (cycled)",
    )
    demo.add_argument(
        "--layers",
        type=int,
        default=None,
        help="restrict each network to its first N layers (quick runs)",
    )
    demo.add_argument("--json", action="store_true", help="also print JSON")

    warm = sub.add_parser(
        "warm", help="pre-solve workloads into the result cache"
    )
    _add_session_options(warm, multi_machine=True)
    warm.add_argument(
        "--networks",
        nargs="+",
        default=None,
        help="networks to warm (default: every Table 1 network)",
    )
    warm.add_argument("--batch", type=int, default=1, help="batch size")
    warm.add_argument(
        "--dry-run",
        action="store_true",
        help="only report what is missing; solve nothing",
    )
    warm.add_argument("--json", action="store_true", help="also print JSON")

    bench = sub.add_parser(
        "bench", help="quick cold/warm benchmark through the Session API"
    )
    _add_session_options(bench)
    bench.add_argument("--network", default="resnet18")
    bench.add_argument(
        "--quick", action="store_true", help="first four layers only"
    )
    bench.add_argument("--out", default=None, help="also write JSON here")
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE.json",
        help="perf-regression sentinel: compare this run's stages against "
        "a baseline bench payload and exit 1 if any common stage is "
        "slower than --tolerance allows",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="allowed per-stage slowdown vs the baseline, percent "
        "(default 10)",
    )
    bench.add_argument(
        "--history",
        default=None,
        metavar="FILE",
        help="bench history JSON-lines file gated runs append to "
        "(default: BENCH_history.jsonl next to the baseline)",
    )

    stats_cmd = sub.add_parser(
        "stats",
        help="fetch a running serving endpoint's telemetry (stats verb)",
        description=(
            "Connect to a `repro serve` endpoint and print its stats "
            "snapshot — lifecycle counters, per-request-class latency "
            "histograms, per-client attribution, cache and reliability "
            "state — as JSON, or the process metrics as Prometheus text "
            "exposition (--prometheus)."
        ),
    )
    stats_cmd.add_argument(
        "endpoint", metavar="HOST:PORT", help="serving endpoint address"
    )
    stats_cmd.add_argument(
        "--prometheus",
        action="store_true",
        help="print Prometheus text exposition instead of JSON",
    )
    stats_cmd.add_argument(
        "--timeout", type=float, default=10.0, help="connect/reply timeout"
    )

    top_cmd = sub.add_parser(
        "top",
        help="live dashboard over a serving endpoint (or sweep heartbeats)",
        description=(
            "Poll a serving endpoint's stats verb and render req/s, "
            "p50/p99 latency, cache hit rate, queue depth, per-class and "
            "per-client counters; with --sweep DIR, render a sharded "
            "sweep's heartbeat sidecars instead."
        ),
    )
    top_cmd.add_argument(
        "endpoint",
        nargs="?",
        default=None,
        metavar="HOST:PORT",
        help="serving endpoint address (omit with --sweep)",
    )
    top_cmd.add_argument(
        "--sweep",
        default=None,
        metavar="DIR",
        help="watch a sweep's heartbeat directory instead of a server",
    )
    top_cmd.add_argument(
        "--interval", type=float, default=2.0, help="seconds between polls"
    )
    top_cmd.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    top_cmd.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N frames (default: run until interrupted)",
    )
    top_cmd.add_argument(
        "--timeout", type=float, default=10.0, help="connect/reply timeout"
    )

    dse = sub.add_parser(
        "dse",
        help="design-space exploration: sweep hypothetical machines",
        description=(
            "Sweep a machine design space and report the Pareto frontier "
            "of predicted time vs. hardware cost.  Axes address machine "
            "parameters by path (cores, caches.L2.capacity_bytes, "
            "isa.vector_bytes, ...); candidate machines that violate the "
            "hierarchy invariants are pruned automatically."
        ),
    )
    _add_session_options(dse)
    dse.set_defaults(strategy="mopt")  # exact mopt is fast enough to be default
    dse.add_argument(
        "--networks",
        nargs="+",
        default=["resnet18"],
        help="workloads to evaluate each candidate machine on",
    )
    dse.add_argument(
        "--axis",
        action="append",
        metavar="PATH=V1,V2,...",
        help="explicit axis values (sizes accept KiB/MiB suffixes; repeatable)",
    )
    dse.add_argument(
        "--log2",
        action="append",
        metavar="PATH=START:STOP",
        help="power-of-two axis from START to STOP inclusive (repeatable)",
    )
    dse.add_argument(
        "--grid",
        action="append",
        metavar="PATH=START:STOP:STEP",
        help="arithmetic axis (repeatable)",
    )
    dse.add_argument("--batch", type=int, default=1, help="batch size")
    dse.add_argument(
        "--chunk-size", type=int, default=16,
        help="progress-report cadence (print every N completed machines)",
    )
    dse.add_argument("--max-workers", type=int, default=None)
    dse.add_argument(
        "--progress",
        default=None,
        metavar="PATH",
        help="JSON-lines progress store making the sweep resumable",
    )
    dse.add_argument(
        "--progress-durability",
        default="fsync",
        choices=("fsync", "flush"),
        help="progress-store flush policy: fsync per candidate (default) "
        "or OS-buffered flush (cheaper for huge sweeps)",
    )
    dse.add_argument(
        "--shard",
        default=None,
        metavar="I/N",
        help="evaluate only the I-th of N deterministic partitions of the "
        "candidate list (one shard per host; combine with 'dse merge')",
    )
    dse.add_argument(
        "--frontier-cost",
        default="total_sram_bytes",
        choices=("total_sram_bytes", "compute_lanes", "peak_gflops", "cores"),
        help="hardware-cost objective paired with predicted time",
    )
    dse.add_argument("--out", default=None, help="write the full JSON report here")
    dse.add_argument("--csv", default=None, help="write a per-candidate CSV here")
    dse.add_argument("--md", default=None, help="write a markdown summary here")
    dse.add_argument(
        "--smoke",
        action="store_true",
        help="tiny built-in sweep (tiny machine, 4 candidates) for CI",
    )
    dse.add_argument(
        "--max-failures",
        type=int,
        default=None,
        metavar="N",
        help="abort the sweep once more than N candidates fail "
        "(default: never — failures are isolated per candidate)",
    )
    dse.add_argument(
        "--inject-candidate-failure",
        nargs="?",
        const="",
        default=None,
        metavar="MACHINE",
        help="chaos testing: make one candidate's evaluation raise "
        "(optionally only the named machine) to exercise failure "
        "isolation; the sweep must still finish with the failure recorded",
    )
    dse.add_argument("--json", action="store_true", help="print the JSON report")

    dse_sub = dse.add_subparsers(dest="dse_command", metavar="subcommand")
    merge = dse_sub.add_parser(
        "merge",
        help="merge shard progress stores (and caches) into one result set",
        description=(
            "Merge the progress stores of a sharded sweep (dse --shard "
            "1/2, 2/2, ... each with its own --progress) into one store "
            "deduplicated by machine digest; the merged store is directly "
            "resumable by the unsharded sweep.  Optionally also merge the "
            "shards' result-cache directories into one chunked store."
        ),
    )
    merge.add_argument(
        "stores",
        nargs="+",
        metavar="STORE",
        help="shard progress stores, in precedence order (first wins on ties)",
    )
    merge.add_argument(
        "--out", required=True, metavar="PATH", help="merged progress store"
    )
    merge.add_argument(
        "--allow-mixed-sweeps",
        action="store_true",
        help="skip the header cross-check that all stores belong to the "
        "same sweep",
    )
    merge.add_argument(
        "--cache",
        action="append",
        default=None,
        metavar="DIR",
        help="shard result-cache directory to merge (repeatable; chunked "
        "or one-file-per-entry, auto-detected)",
    )
    merge.add_argument(
        "--cache-out",
        default=None,
        metavar="DIR",
        help="destination chunked result store for --cache sources",
    )
    merge.add_argument("--json", action="store_true", help="print JSON counters")

    status = dse_sub.add_parser(
        "status",
        help="fleet health of a running/finished sweep from its heartbeats",
        description=(
            "Scan a directory for sweep heartbeat sidecars (*.hb.json, "
            "written next to each shard's --progress store) and render "
            "per-shard progress, rate, failures and staleness."
        ),
    )
    status.add_argument(
        "directory", metavar="DIR", help="directory holding heartbeat sidecars"
    )
    status.add_argument(
        "--stale-after",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="flag running shards with no heartbeat update for this long "
        "(default: 60)",
    )
    status.add_argument("--json", action="store_true", help="print JSON")

    trace_cmd = sub.add_parser(
        "trace", help="inspect structured traces (--trace FILE output)"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary",
        help="per-phase time breakdown of a JSON-lines trace",
        description=(
            "Aggregate a JSON-lines trace (written by `optimize --trace` "
            "or Session(trace=...)) by span name: count, total, mean and "
            "each phase's share of the traced wall time."
        ),
    )
    trace_summary.add_argument(
        "trace_file", metavar="FILE", help="JSON-lines trace file"
    )
    trace_summary.add_argument("--json", action="store_true", help="print JSON")

    list_cmd = sub.add_parser(
        "list", help="registered machines, strategies and networks"
    )
    list_cmd.add_argument("--json", action="store_true", help="print JSON")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    runners = {
        "optimize": _run_optimize,
        "warm": _run_warm,
        "bench": _run_bench,
        "dse": _run_dse,
        "trace": _run_trace,
        "list": _run_list,
    }
    async_runners = {
        "serve": _run_serve,
        "demo": _run_demo,
        "stats": _run_stats,
        "top": _run_top,
    }
    try:
        if args.command in async_runners:
            return asyncio.run(async_runners[args.command](args))
        return runners[args.command](args)
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
