"""Unified metrics registry: counters, gauges, histograms, collectors.

One process-wide :class:`MetricsRegistry` replaces the per-subsystem
stat dicts that accumulated across PRs (``reliability.health``'s flat
counter map, ``CompileCache.stats()``, ``table_cache_stats()``,
``solve_pool.pool_stats()``).  Subsystems either

* own first-class instruments — ``REGISTRY.counter("health.pool_rebuilds")``
  — created on first use and snapshot deterministically, or
* keep their internal bookkeeping and register a *collector*: a zero-arg
  callable returning their existing stats dict, merged into
  :func:`snapshot` under the collector's name.

The collector path is what lets :meth:`repro.api.Session.performance_stats`
and ``OptimizationServer.stats_snapshot()`` keep their exact historical
payload shapes while becoming pure views over this registry.

Histograms use *fixed* bucket boundaries chosen at creation so two
snapshots of the same registry are structurally identical (same keys,
same order) regardless of what was observed — a requirement for golden
tests and for diffing snapshots across runs.

Everything here is thread-safe behind per-instrument locks plus one
registry lock for creation, and fork-inherited state stays valid (plain
ints and lists; no file descriptors).
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "snapshot",
]

#: Default histogram boundaries (seconds-flavored, log-ish spacing).
#: Fixed at creation so snapshots are deterministic in shape.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


class Counter:
    """Monotonically increasing integer; :meth:`inc` returns the new value."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> int:
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge:
    """Last-write-wins float, for levels (queue depth, cache size)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> float:
        with self._lock:
            self._value += delta
            return self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-boundary histogram with count/sum/min/max.

    ``boundaries`` are upper-inclusive bucket edges; observations above
    the last edge land in the implicit ``+inf`` bucket.  The boundary
    tuple is frozen at creation, so every snapshot of this histogram has
    the same keys in the same order.
    """

    __slots__ = ("name", "boundaries", "_lock", "_counts", "_count",
                 "_sum", "_min", "_max")

    def __init__(
        self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        edges = tuple(sorted(float(b) for b in boundaries))
        if not edges:
            raise ValueError("histogram needs at least one bucket boundary")
        self.name = name
        self.boundaries = edges
        self._lock = threading.Lock()
        self._counts = [0] * (len(edges) + 1)  # +1 for the +inf bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect.bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            buckets = {
                f"le_{edge:g}": count
                for edge, count in zip(self.boundaries, self._counts)
            }
            buckets["le_inf"] = self._counts[-1]
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "buckets": buckets,
            }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.boundaries) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf


class MetricsRegistry:
    """Process-wide instrument registry plus named stat collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: Dict[str, Callable[[], Dict[str, Any]]] = {}

    # -- instrument creation (idempotent, create-on-first-use) ---------
    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(
        self, name: str, boundaries: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, boundaries)
            return inst

    # -- peeking without creating --------------------------------------
    def counter_value(self, name: str) -> int:
        """Current value of ``name``; 0 if it was never created."""
        with self._lock:
            inst = self._counters.get(name)
        return inst.value if inst is not None else 0

    def counters_with_prefix(self, prefix: str) -> Dict[str, int]:
        """``{stripped_name: value}`` for counters under ``prefix``.

        Only counters that exist are returned — a caller that never
        incremented anything gets an empty dict, matching the historical
        ``health_counters()`` only-what-fired contract.
        """
        with self._lock:
            items = [
                (name[len(prefix):], inst)
                for name, inst in self._counters.items()
                if name.startswith(prefix)
            ]
        return {name: inst.value for name, inst in items}

    def histograms_with_prefix(self, prefix: str) -> Dict[str, Dict[str, Any]]:
        """``{stripped_name: snapshot}`` for histograms under ``prefix``.

        Same only-what-fired contract as :meth:`counters_with_prefix`:
        a histogram exists once something observed into it.
        """
        with self._lock:
            items = [
                (name[len(prefix):], inst)
                for name, inst in sorted(self._histograms.items())
                if name.startswith(prefix)
            ]
        return {name: inst.snapshot() for name, inst in items}

    # -- collectors ----------------------------------------------------
    def register_collector(
        self, name: str, fn: Callable[[], Dict[str, Any]]
    ) -> None:
        """Merge ``fn()`` into :meth:`snapshot` under ``name``.

        Re-registering a name overwrites (module reloads in tests).
        """
        with self._lock:
            self._collectors[name] = fn

    def collect(self, name: str) -> Dict[str, Any]:
        """Run one registered collector by name (KeyError if absent)."""
        with self._lock:
            fn = self._collectors[name]
        return fn()

    # -- snapshot / reset ----------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """One deterministic dict over everything the process exports.

        Shape: ``{"counters": {...}, "gauges": {...}, "histograms":
        {...}, <collector>: <its dict>, ...}`` with every sub-dict
        key-sorted.  Collector failures surface as ``{"error": str}``
        rather than poisoning the whole snapshot.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
            collectors = sorted(self._collectors.items())
        snap: Dict[str, Any] = {
            "counters": {name: inst.value for name, inst in counters},
            "gauges": {name: inst.value for name, inst in gauges},
            "histograms": {name: inst.snapshot() for name, inst in histograms},
        }
        for name, fn in collectors:
            try:
                snap[name] = fn()
            except Exception as exc:  # pragma: no cover - defensive
                snap[name] = {"error": str(exc)}
        return snap

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero instruments (all of them, or just those under ``prefix``).

        Collectors are left registered — they mirror live subsystem
        state the registry does not own.
        """
        with self._lock:
            instruments: List[Any] = [
                inst
                for group in (self._counters, self._gauges, self._histograms)
                for name, inst in group.items()
                if prefix is None or name.startswith(prefix)
            ]
        for inst in instruments:
            inst.reset()

    def remove(self, prefix: str) -> None:
        """Drop instruments under ``prefix`` entirely (not just zero them).

        This is what a *clearing* reset needs: a removed counter no
        longer appears in snapshots, restoring the only-what-fired
        contract of the health-counter map.
        """
        with self._lock:
            for group in (self._counters, self._gauges, self._histograms):
                for name in [n for n in group if n.startswith(prefix)]:
                    del group[name]


#: The process-wide registry every subsystem shares.
REGISTRY = MetricsRegistry()


def snapshot() -> Dict[str, Any]:
    """Shorthand for ``REGISTRY.snapshot()`` — the one-stop stats view."""
    return REGISTRY.snapshot()
