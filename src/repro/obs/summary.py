"""Phase-time breakdown over a trace: ``python -m repro trace summary``.

Aggregates a list of span records (from :func:`repro.obs.trace.load_jsonl`
or straight off the ring) by span name into count / total / mean /
min / max, plus each name's share of the *self time* base — the sum of
root-span durations, i.e. wall time actually covered by tracing.  The
rendering is deterministic (sorted by total descending, then name) so
the CLI output can be golden-tested.
"""

from __future__ import annotations

from typing import Any, Dict, List

__all__ = ["summarize", "render_summary"]


def summarize(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate span records by name.

    Returns ``{"spans": <n>, "traces": <n>, "root_seconds": <s>,
    "phases": [{name, count, total_s, mean_s, min_s, max_s, share}]}``
    with phases sorted by total descending (ties by name).  ``share``
    is ``total_s / root_seconds`` — for non-overlapping child phases of
    one root span these shares show how the wall decomposes.
    """
    by_name: Dict[str, Dict[str, Any]] = {}
    traces = set()
    root_seconds = 0.0
    for rec in records:
        name = rec.get("name", "?")
        duration = float(rec.get("duration_s", 0.0))
        if rec.get("trace_id"):
            traces.add(rec["trace_id"])
        if rec.get("parent_id") is None:
            root_seconds += duration
        agg = by_name.get(name)
        if agg is None:
            agg = by_name[name] = {
                "name": name, "count": 0, "total_s": 0.0,
                "min_s": duration, "max_s": duration,
            }
        agg["count"] += 1
        agg["total_s"] += duration
        agg["min_s"] = min(agg["min_s"], duration)
        agg["max_s"] = max(agg["max_s"], duration)
    phases = sorted(
        by_name.values(), key=lambda a: (-a["total_s"], a["name"])
    )
    for agg in phases:
        agg["mean_s"] = agg["total_s"] / agg["count"]
        agg["share"] = (
            agg["total_s"] / root_seconds if root_seconds > 0 else 0.0
        )
    result = {
        "spans": len(records),
        "traces": len(traces),
        "root_seconds": root_seconds,
        "phases": phases,
    }
    serving = _summarize_serving(records)
    if serving is not None:
        result["serving"] = serving
    return result


def _summarize_serving(records: List[Dict[str, Any]]) -> Any:
    """Per-request-class latency breakdown over ``serving.request`` spans.

    Returns ``{"requests": <n>, "classes": [{request_class, count,
    total_s, mean_s, min_s, max_s}]}`` sorted by total descending, or
    ``None`` when the trace contains no serving spans (so non-serving
    traces keep their historical summary shape).
    """
    by_class: Dict[str, Dict[str, Any]] = {}
    requests = 0
    for rec in records:
        if rec.get("name") != "serving.request":
            continue
        requests += 1
        duration = float(rec.get("duration_s", 0.0))
        cls = str((rec.get("attrs") or {}).get("request_class", "?"))
        agg = by_class.get(cls)
        if agg is None:
            agg = by_class[cls] = {
                "request_class": cls, "count": 0, "total_s": 0.0,
                "min_s": duration, "max_s": duration,
            }
        agg["count"] += 1
        agg["total_s"] += duration
        agg["min_s"] = min(agg["min_s"], duration)
        agg["max_s"] = max(agg["max_s"], duration)
    if not requests:
        return None
    classes = sorted(
        by_class.values(), key=lambda a: (-a["total_s"], a["request_class"])
    )
    for agg in classes:
        agg["mean_s"] = agg["total_s"] / agg["count"]
    return {"requests": requests, "classes": classes}


def render_summary(summary: Dict[str, Any]) -> str:
    """Deterministic phase-time breakdown table for one :func:`summarize`."""
    lines = [
        f"trace summary: {summary['spans']} spans, "
        f"{summary['traces']} traces, "
        f"{summary['root_seconds']:.3f}s root wall",
    ]
    if not summary["phases"]:
        lines.append("  (no spans)")
        return "\n".join(lines)
    header = (
        f"  {'span':<26} {'count':>6} {'total_s':>9} {'mean_s':>9} "
        f"{'min_s':>9} {'max_s':>9} {'share':>7}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for agg in summary["phases"]:
        lines.append(
            f"  {agg['name']:<26} {agg['count']:>6} "
            f"{agg['total_s']:>9.3f} {agg['mean_s']:>9.4f} "
            f"{agg['min_s']:>9.4f} {agg['max_s']:>9.4f} "
            f"{100.0 * agg['share']:>6.1f}%"
        )
    serving = summary.get("serving")
    if serving:
        lines.append("")
        lines.append(
            f"serving requests: {serving['requests']} "
            f"(latency by request class)"
        )
        header = (
            f"  {'class':<12} {'count':>6} {'total_s':>9} {'mean_s':>9} "
            f"{'min_s':>9} {'max_s':>9}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for agg in serving["classes"]:
            lines.append(
                f"  {agg['request_class']:<12} {agg['count']:>6} "
                f"{agg['total_s']:>9.3f} {agg['mean_s']:>9.4f} "
                f"{agg['min_s']:>9.4f} {agg['max_s']:>9.4f}"
            )
    return "\n".join(lines)
