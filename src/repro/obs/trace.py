"""Structured tracing: nestable spans, ring buffer, JSON-lines export.

A *span* is one timed region — ``with span("solve.refine", round=2):``
— carrying a name, attributes, and a ``trace_id``/``span_id``/
``parent_id`` triple that stitches nested spans into a tree.  Finished
spans are appended to a bounded in-memory ring (oldest dropped first)
and exported as JSON-lines via :func:`export_jsonl` /
``Session(trace=...)`` / ``--trace FILE``.

Design constraints this module is built around:

* **Near-zero cost when disabled.**  Tracing is off by default; a
  disabled span still measures its own wall time (two ``perf_counter``
  calls) so callers can use ``sp.elapsed`` as the single source of
  truth for ``wall_seconds`` fields — the timing a user sees and the
  timing a trace records can never disagree — but it allocates no ids
  and touches no shared state.
* **Thread- and task-safe nesting.**  The current span is a
  :mod:`contextvars` variable, so concurrent threads and interleaved
  asyncio tasks each see their own ancestry.
* **Explicit cross-worker propagation.**  Thread pools and fork-based
  process pools do not inherit a submitting task's context, so callers
  ship :func:`current_context` with the work item: thread workers wrap
  execution in :func:`activate`; process workers (which cannot reach
  the parent's ring) wrap it in :func:`remote_capture` and return the
  captured records for the parent to :func:`ingest`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "TraceContext",
    "activate",
    "current_context",
    "disable",
    "drain",
    "enable",
    "export_jsonl",
    "ingest",
    "is_enabled",
    "load_jsonl",
    "new_span_id",
    "record_span",
    "remote_capture",
    "snapshot_spans",
    "span",
]

#: ``(trace_id, span_id)`` of the active span — picklable, shippable.
TraceContext = Tuple[str, str]

DEFAULT_RING_SIZE = 65536

_ENABLED = False
_RING_LOCK = threading.Lock()
_RING: deque = deque(maxlen=DEFAULT_RING_SIZE)
_DROPPED = 0

#: Ancestry of the running code path (thread/task-local).
_CURRENT: ContextVar[Optional[TraceContext]] = ContextVar(
    "repro_trace_current", default=None
)
#: Side sink for :func:`remote_capture` — records spans even when the
#: process-wide flag is off (fork workers of an untraced parent pool).
_SINK: ContextVar[Optional[List[Dict[str, Any]]]] = ContextVar(
    "repro_trace_sink", default=None
)


def _new_id() -> str:
    # os.urandom reads the kernel CSPRNG: fork-safe like uuid4 (children
    # cannot replay the parent's stream) at a fifth of the cost — span
    # ids are minted on the serving hot path, several per request.
    return os.urandom(8).hex()


# getpid() is a syscall; span records are minted several times per
# serving request, so cache it and refresh in fork children (the solve
# pool forks workers whose records must carry their own pid).
_PID = os.getpid()


def _refresh_pid() -> None:
    global _PID
    _PID = os.getpid()


if hasattr(os, "register_at_fork"):  # pragma: no branch
    os.register_at_fork(after_in_child=_refresh_pid)


# ----------------------------------------------------------------------
# enable / disable / buffer access
# ----------------------------------------------------------------------
def enable(ring_size: int = DEFAULT_RING_SIZE) -> None:
    """Turn tracing on process-wide (ring re-sized only if it changes)."""
    global _ENABLED, _RING, _DROPPED
    with _RING_LOCK:
        if _RING.maxlen != ring_size:
            _RING = deque(_RING, maxlen=ring_size)
        _DROPPED = 0
    _ENABLED = True


def disable() -> None:
    """Turn tracing off; the ring keeps whatever it already holds."""
    global _ENABLED
    _ENABLED = False


def is_enabled() -> bool:
    return _ENABLED


def snapshot_spans() -> List[Dict[str, Any]]:
    """Copy of every buffered span record, oldest first."""
    with _RING_LOCK:
        return list(_RING)


def drain() -> List[Dict[str, Any]]:
    """Remove and return every buffered span record, oldest first."""
    with _RING_LOCK:
        records = list(_RING)
        _RING.clear()
        return records


def dropped_spans() -> int:
    """Spans evicted from the ring since :func:`enable` (bounded ring)."""
    return _DROPPED


def _record(rec: Dict[str, Any]) -> None:
    global _DROPPED
    with _RING_LOCK:
        if len(_RING) == _RING.maxlen:
            _DROPPED += 1
        _RING.append(rec)


def ingest(records: List[Dict[str, Any]]) -> None:
    """Append records captured elsewhere (a pool worker) to the ring."""
    for rec in records:
        _record(rec)


# ----------------------------------------------------------------------
# the span context manager
# ----------------------------------------------------------------------
class Span:
    """One timed region.  After ``__exit__``, ``elapsed`` holds the wall
    seconds the region took — valid whether or not tracing recorded it."""

    __slots__ = (
        "name", "attrs", "elapsed", "trace_id", "span_id",
        "_t0", "_wall0", "_token", "_recording", "_parent_id",
    )

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.elapsed = 0.0
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self._token = None
        self._recording = False
        self._parent_id: Optional[str] = None

    def __enter__(self) -> "Span":
        self._recording = _ENABLED or _SINK.get() is not None
        if self._recording:
            parent = _CURRENT.get()
            if parent is None:
                self.trace_id = _new_id()
                self._parent_id = None
            else:
                self.trace_id, self._parent_id = parent
            self.span_id = _new_id()
            self._token = _CURRENT.set((self.trace_id, self.span_id))
            self._wall0 = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._t0
        if not self._recording:
            return
        _CURRENT.reset(self._token)
        rec: Dict[str, Any] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self._parent_id,
            "start_s": self._wall0,
            "duration_s": self.elapsed,
            "pid": _PID,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        if exc_type is not None:
            rec["error"] = exc_type.__name__
        sink = _SINK.get()
        if sink is not None:
            sink.append(rec)
        elif _ENABLED:
            _record(rec)


def span(name: str, **attrs: Any) -> Span:
    """A nestable timed region: ``with span("solve.refine", round=2):``.

    Always measures (``sp.elapsed`` after exit); records into the ring
    only while tracing is enabled (or inside :func:`remote_capture`).
    """
    return Span(name, attrs)


def new_span_id() -> str:
    """A fresh span/trace id for callers pre-allocating span identity.

    The serving path allocates the ``serving.request`` span id at
    admission so queue-time children can parent to it before the span
    record itself is written (see :func:`record_span`).
    """
    return _new_id()


def record_span(
    name: str,
    duration_s: float,
    *,
    trace_id: Optional[str] = None,
    span_id: Optional[str] = None,
    parent_id: Optional[str] = None,
    end_s: Optional[float] = None,
    **attrs: Any,
) -> Optional[Dict[str, Any]]:
    """Record an already-finished span measured outside a ``with`` block.

    Some regions cannot be a live context manager: a request's queue
    wait starts in ``submit()`` and ends when a worker claims it in a
    different task, and the full request wall is only known at the
    terminal event.  This synthesizes the finished record directly
    (``start_s`` back-dated by ``duration_s`` from ``end_s``/now) and
    appends it to the same ring/sink a :func:`span` exit would.

    Returns the record, or ``None`` when tracing is off (the call is
    then two attribute reads — safe on hot paths).
    """
    sink = _SINK.get()
    if not _ENABLED and sink is None:
        return None
    end = time.time() if end_s is None else end_s
    rec: Dict[str, Any] = {
        "name": name,
        "trace_id": trace_id or _new_id(),
        "span_id": span_id or _new_id(),
        "parent_id": parent_id,
        "start_s": end - duration_s,
        "duration_s": float(duration_s),
        "pid": _PID,
    }
    if attrs:
        rec["attrs"] = attrs
    if sink is not None:
        sink.append(rec)
    else:
        _record(rec)
    return rec


# ----------------------------------------------------------------------
# cross-thread / cross-process propagation
# ----------------------------------------------------------------------
def current_context() -> Optional[TraceContext]:
    """The active ``(trace_id, span_id)``, or None when untraced.

    Ship this with work items submitted to thread/process pools, then
    :func:`activate` (threads) or :func:`remote_capture` (processes) it
    on the other side so worker spans join the submitter's trace.
    """
    if not (_ENABLED or _SINK.get() is not None):
        return None
    return _CURRENT.get()


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[None]:
    """Adopt a shipped context as the current ancestry (thread pools)."""
    if ctx is None:
        yield
        return
    token = _CURRENT.set(ctx)
    try:
        yield
    finally:
        _CURRENT.reset(token)


@contextmanager
def remote_capture(
    ctx: Optional[TraceContext],
) -> Iterator[Optional[List[Dict[str, Any]]]]:
    """Capture spans in a process-pool worker under a shipped context.

    The worker cannot append to the parent's ring, so spans are
    collected into the yielded list; the caller returns it with the
    task result and the parent calls :func:`ingest`.  With ``ctx is
    None`` (parent untraced) this is a no-op yielding ``None``.
    """
    if ctx is None:
        yield None
        return
    records: List[Dict[str, Any]] = []
    sink_token = _SINK.set(records)
    cur_token = _CURRENT.set(ctx)
    try:
        yield records
    finally:
        _CURRENT.reset(cur_token)
        _SINK.reset(sink_token)


# ----------------------------------------------------------------------
# JSON-lines export / import
# ----------------------------------------------------------------------
def export_jsonl(path: Union[str, Path]) -> int:
    """Write every buffered span as one JSON object per line.

    Returns the number of spans written.  The write is atomic
    (temp + rename) so a reader never sees a torn file.
    """
    records = snapshot_spans()
    path = Path(path).expanduser()
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(json.dumps(rec, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return len(records)


def load_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a trace file back; malformed lines are skipped, not fatal."""
    records: List[Dict[str, Any]] = []
    with Path(path).expanduser().open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(rec, dict) and "name" in rec:
                records.append(rec)
    return records
