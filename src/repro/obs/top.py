"""The ``repro top`` live dashboard model and rendering.

Pure functions over serving stats payloads (what the TCP ``stats`` verb
returns, i.e. :meth:`OptimizationServer.stats_snapshot`):

* :func:`compute_dashboard` — turn the current payload (plus the
  previous poll, for rates) into one flat dashboard model: request and
  operator throughput, p50/p99 latency from the per-class histograms,
  cache hit rate, queue depth, per-class terminal counts, reliability
  counters and top client talkers.
* :func:`render_dashboard` — deterministic text rendering of one model
  (golden-testable; the CLI adds the screen-clear and the poll loop).

Keeping the model pure lets the same code back the one-shot
``repro top --once`` output, the polling dashboard, and tests that
never open a socket.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from .export import histogram_quantile

__all__ = ["compute_dashboard", "merge_histograms", "render_dashboard"]


def merge_histograms(
    histograms: Mapping[str, Mapping[str, Any]]
) -> Optional[Dict[str, Any]]:
    """Merge per-class histogram snapshots into one combined snapshot.

    All serving latency histograms share the same fixed boundaries, so
    merging is a per-bucket sum.  Returns ``None`` when there is
    nothing to merge.
    """
    merged: Optional[Dict[str, Any]] = None
    for hist in histograms.values():
        if not hist.get("count"):
            continue
        if merged is None:
            merged = {
                "count": int(hist["count"]),
                "sum": float(hist.get("sum", 0.0)),
                "min": float(hist.get("min", 0.0)),
                "max": float(hist.get("max", 0.0)),
                "buckets": dict(hist.get("buckets", {})),
            }
            continue
        merged["count"] += int(hist["count"])
        merged["sum"] += float(hist.get("sum", 0.0))
        merged["min"] = min(merged["min"], float(hist.get("min", 0.0)))
        merged["max"] = max(merged["max"], float(hist.get("max", 0.0)))
        for key, count in hist.get("buckets", {}).items():
            merged["buckets"][key] = merged["buckets"].get(key, 0) + int(count)
    return merged


def _rate(
    current: Mapping[str, Any],
    previous: Optional[Mapping[str, Any]],
    key: str,
    interval_s: float,
) -> Optional[float]:
    if previous is None or interval_s <= 0:
        return None
    delta = float(current.get(key, 0)) - float(previous.get(key, 0))
    return max(delta, 0.0) / interval_s


def compute_dashboard(
    current: Mapping[str, Any],
    previous: Optional[Mapping[str, Any]] = None,
    interval_s: float = 0.0,
) -> Dict[str, Any]:
    """One flat dashboard model from a stats payload (and the last poll).

    Rates (``req_per_s``/``ops_per_s``) need a previous payload and a
    positive interval; they are ``None`` on the first poll.  Latency
    percentiles aggregate every request class's histogram.
    """
    latency = merge_histograms(current.get("latency_s", {}) or {})
    served = int(current.get("operators_served", 0))
    cached = int(current.get("operators_cached", 0))
    reliability = current.get("reliability", {}) or {}
    rel_counters = {
        key: value
        for key, value in sorted(reliability.items())
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    clients: List[Tuple[str, int]] = sorted(
        ((name, int(count)) for name, count in (current.get("clients") or {}).items()),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return {
        "completed": int(current.get("completed", 0)),
        "accepted": int(current.get("accepted", 0)),
        "req_per_s": _rate(current, previous, "completed", interval_s),
        "ops_per_s": _rate(current, previous, "operators_served", interval_s),
        "p50_s": histogram_quantile(latency, 0.50) if latency else None,
        "p99_s": histogram_quantile(latency, 0.99) if latency else None,
        "cache_hit_rate": (cached / served) if served else None,
        "queue_depth": int(current.get("queue_depth", 0)),
        "active_requests": int(current.get("active_requests", 0)),
        "requests_by_class": dict(current.get("requests_by_class") or {}),
        "reliability": rel_counters,
        "clients": clients[:8],
    }


def _fmt(value: Optional[float], pattern: str = "{:.1f}") -> str:
    return "-" if value is None else pattern.format(value)


def render_dashboard(
    model: Mapping[str, Any], *, endpoint: str = ""
) -> str:
    """Deterministic text rendering of one :func:`compute_dashboard`."""
    title = "repro top" + (f" — {endpoint}" if endpoint else "")
    lines = [title, "=" * len(title)]
    lines.append(
        f"requests   completed={model['completed']} "
        f"accepted={model['accepted']} "
        f"req/s={_fmt(model['req_per_s'])} "
        f"ops/s={_fmt(model['ops_per_s'])}"
    )
    lines.append(
        f"latency    p50={_fmt(model['p50_s'], '{:.4f}s')} "
        f"p99={_fmt(model['p99_s'], '{:.4f}s')}"
    )
    hit = model["cache_hit_rate"]
    lines.append(
        f"cache      hit_rate={_fmt(None if hit is None else 100.0 * hit, '{:.1f}%')}"
    )
    lines.append(
        f"queue      depth={model['queue_depth']} "
        f"active={model['active_requests']}"
    )
    by_class = model["requests_by_class"]
    if by_class:
        parts = " ".join(
            f"{name}={count}" for name, count in sorted(by_class.items())
        )
        lines.append(f"classes    {parts}")
    if model["reliability"]:
        parts = " ".join(
            f"{name}={count}" for name, count in model["reliability"].items()
        )
        lines.append(f"health     {parts}")
    if model["clients"]:
        parts = " ".join(
            f"{name}={count}" for name, count in model["clients"]
        )
        lines.append(f"clients    {parts}")
    return "\n".join(lines)
