"""Observability subsystem: tracing, metrics, heartbeats, summaries.

Four small, dependency-free layers the rest of the system hangs
telemetry on (nothing here imports the solver/engine packages, so any
module may import :mod:`repro.obs` without cycles):

* :mod:`repro.obs.trace` — nestable ``span()`` context managers with
  trace-id propagation across thread pools and fork-based process
  pools, a bounded ring buffer, JSON-lines export.
* :mod:`repro.obs.metrics` — the process-wide registry (counters,
  gauges, fixed-bucket histograms, named collectors) behind
  ``metrics.snapshot()``; ``Session.performance_stats()`` and the
  serving ``stats_snapshot()`` are views over it.
* :mod:`repro.obs.heartbeat` — atomic progress sidecars for sweeps and
  shards, read back by ``python -m repro dse status DIR``.
* :mod:`repro.obs.summary` — per-phase time breakdown over a trace,
  rendered by ``python -m repro trace summary FILE``.
"""

from . import metrics, trace
from .heartbeat import (
    DEFAULT_STALE_AFTER,
    HeartbeatWriter,
    heartbeat_path_for,
    read_heartbeats,
    render_status,
    status_payload,
)
from .metrics import REGISTRY, MetricsRegistry
from .summary import render_summary, summarize
from .trace import (
    activate,
    current_context,
    export_jsonl,
    ingest,
    load_jsonl,
    remote_capture,
    span,
)

__all__ = [
    "DEFAULT_STALE_AFTER",
    "HeartbeatWriter",
    "MetricsRegistry",
    "REGISTRY",
    "activate",
    "current_context",
    "export_jsonl",
    "heartbeat_path_for",
    "ingest",
    "load_jsonl",
    "metrics",
    "read_heartbeats",
    "remote_capture",
    "render_status",
    "render_summary",
    "span",
    "status_payload",
    "summarize",
    "trace",
]
