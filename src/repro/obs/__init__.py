"""Observability subsystem: tracing, metrics, heartbeats, summaries.

Four small, dependency-free layers the rest of the system hangs
telemetry on (nothing here imports the solver/engine packages, so any
module may import :mod:`repro.obs` without cycles):

* :mod:`repro.obs.trace` — nestable ``span()`` context managers with
  trace-id propagation across thread pools and fork-based process
  pools, a bounded ring buffer, JSON-lines export.
* :mod:`repro.obs.metrics` — the process-wide registry (counters,
  gauges, fixed-bucket histograms, named collectors) behind
  ``metrics.snapshot()``; ``Session.performance_stats()`` and the
  serving ``stats_snapshot()`` are views over it.
* :mod:`repro.obs.heartbeat` — atomic progress sidecars for sweeps and
  shards, read back by ``python -m repro dse status DIR``.
* :mod:`repro.obs.summary` — per-phase time breakdown over a trace,
  rendered by ``python -m repro trace summary FILE``.
* :mod:`repro.obs.export` — the metrics snapshot rendered as Prometheus
  text exposition / JSON (the ``stats`` TCP verb, ``repro stats``).
* :mod:`repro.obs.top` — the ``repro top`` dashboard model (pure
  functions over serving stats payloads).
"""

from . import export, metrics, top, trace
from .export import histogram_quantile, render_json, render_prometheus
from .heartbeat import (
    DEFAULT_STALE_AFTER,
    HeartbeatWriter,
    heartbeat_path_for,
    read_heartbeats,
    render_status,
    status_payload,
)
from .metrics import REGISTRY, MetricsRegistry
from .summary import render_summary, summarize
from .top import compute_dashboard, render_dashboard
from .trace import (
    activate,
    current_context,
    export_jsonl,
    ingest,
    load_jsonl,
    new_span_id,
    record_span,
    remote_capture,
    span,
)

__all__ = [
    "DEFAULT_STALE_AFTER",
    "HeartbeatWriter",
    "MetricsRegistry",
    "REGISTRY",
    "activate",
    "compute_dashboard",
    "current_context",
    "export",
    "export_jsonl",
    "heartbeat_path_for",
    "histogram_quantile",
    "ingest",
    "load_jsonl",
    "metrics",
    "new_span_id",
    "read_heartbeats",
    "record_span",
    "remote_capture",
    "render_dashboard",
    "render_json",
    "render_prometheus",
    "render_status",
    "render_summary",
    "span",
    "status_payload",
    "summarize",
    "top",
    "trace",
]
