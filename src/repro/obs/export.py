"""Metrics export surface: Prometheus text exposition and JSON.

Renders a :func:`repro.obs.metrics.snapshot` — the one deterministic
dict over every counter, gauge, histogram and registered collector —
into the two formats scrape infrastructure actually consumes:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# TYPE`` lines, cumulative ``_bucket{le="..."}`` series, ``_sum``
  and ``_count``).  Collector payloads (the ``"serving"``,
  ``"reliability"``, ... sections) are flattened: every numeric leaf
  becomes one gauge sample named by its path.
* :func:`render_json` — the snapshot itself, key-sorted and
  pretty-printed, for machine consumption.

Both renderings are deterministic for a given snapshot (sorted keys
throughout), which is what lets the serving ``stats`` verb and
``python -m repro stats`` be golden-tested.

:func:`histogram_quantile` estimates percentiles (p50/p99) from a
histogram snapshot's cumulative bucket counts — the standard
Prometheus-style linear interpolation within the winning bucket —
used by the ``repro top`` dashboard.
"""

from __future__ import annotations

import json
import math
import re
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "histogram_quantile",
    "render_json",
    "render_prometheus",
    "sanitize_metric_name",
]

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """A valid Prometheus metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = _INVALID_CHARS.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _bucket_edges(buckets: Mapping[str, int]) -> List[Tuple[float, int]]:
    """Parse a histogram snapshot's ``le_<edge>``/``le_inf`` bucket map."""
    edges: List[Tuple[float, int]] = []
    for key, count in buckets.items():
        if not key.startswith("le_"):
            continue
        raw = key[len("le_"):]
        edge = math.inf if raw == "inf" else float(raw)
        edges.append((edge, int(count)))
    edges.sort(key=lambda pair: pair[0])
    return edges


def _flatten_numeric(
    payload: Any, path: Tuple[str, ...] = ()
) -> List[Tuple[str, Any]]:
    """``[(dotted.path, number)]`` over every numeric leaf of ``payload``."""
    leaves: List[Tuple[str, Any]] = []
    if isinstance(payload, Mapping):
        for key in sorted(payload, key=str):
            leaves.extend(_flatten_numeric(payload[key], path + (str(key),)))
    elif isinstance(payload, bool) or isinstance(payload, (int, float)):
        leaves.append((".".join(path), payload))
    return leaves


def render_prometheus(
    snapshot: Mapping[str, Any], *, prefix: str = "repro"
) -> str:
    """Render one metrics snapshot as Prometheus text exposition.

    Counters and gauges map directly; histograms become the standard
    cumulative ``_bucket``/``_sum``/``_count`` family.  Every other
    top-level section is a collector payload whose numeric leaves are
    exported as gauges named ``<prefix>_<section>_<path>``.
    """
    lines: List[str] = []

    def emit(name: str, kind: str, samples: List[Tuple[str, str]]) -> None:
        lines.append(f"# TYPE {name} {kind}")
        for labels, value in samples:
            lines.append(f"{name}{labels} {value}")

    for name in sorted(snapshot.get("counters", {})):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        emit(metric, "counter", [("", _format_value(snapshot["counters"][name]))])
    for name in sorted(snapshot.get("gauges", {})):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        emit(metric, "gauge", [("", _format_value(snapshot["gauges"][name]))])
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        samples: List[Tuple[str, str]] = []
        cumulative = 0
        for edge, count in _bucket_edges(hist.get("buckets", {})):
            cumulative += count
            le = "+Inf" if math.isinf(edge) else f"{edge:g}"
            samples.append((f'_bucket{{le="{le}"}}', _format_value(cumulative)))
        samples.append(("_sum", _format_value(hist.get("sum", 0.0))))
        samples.append(("_count", _format_value(hist.get("count", 0))))
        lines.append(f"# TYPE {metric} histogram")
        for suffix, value in samples:
            lines.append(f"{metric}{suffix} {value}")
    for section in sorted(snapshot):
        if section in ("counters", "gauges", "histograms"):
            continue
        payload = snapshot[section]
        for path, value in _flatten_numeric(payload, (section,)):
            metric = f"{prefix}_{sanitize_metric_name(path)}"
            emit(metric, "gauge", [("", _format_value(value))])
    return "\n".join(lines) + "\n"


def render_json(snapshot: Mapping[str, Any]) -> str:
    """The snapshot as key-sorted pretty JSON (trailing newline)."""
    return json.dumps(snapshot, indent=2, sort_keys=True, default=str) + "\n"


def histogram_quantile(
    hist: Mapping[str, Any], quantile: float
) -> Optional[float]:
    """Estimate a quantile from one histogram snapshot.

    Standard cumulative-bucket linear interpolation: find the bucket
    the target rank falls into and interpolate between its edges,
    clamped by the recorded ``min``/``max`` where they are tighter.
    Returns ``None`` for an empty histogram.
    """
    count = int(hist.get("count", 0))
    if count <= 0:
        return None
    quantile = min(max(quantile, 0.0), 1.0)
    target = quantile * count
    edges = _bucket_edges(hist.get("buckets", {}))
    observed_min = float(hist.get("min", 0.0))
    observed_max = float(hist.get("max", 0.0))
    cumulative = 0
    lower = observed_min
    for edge, bucket_count in edges:
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= target and bucket_count > 0:
            upper = observed_max if math.isinf(edge) else min(edge, observed_max)
            lower = max(lower, observed_min)
            if upper <= lower:
                return upper
            fraction = (target - previous) / bucket_count
            return lower + fraction * (upper - lower)
        if not math.isinf(edge):
            lower = max(edge, observed_min)
    return observed_max
