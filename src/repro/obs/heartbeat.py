"""Atomic heartbeat sidecars: live progress for sweeps and shards.

A long sharded sweep runs as N independent processes writing N progress
stores; until now the only way to see how a fleet was doing was to tail
each store.  Each sweep (and each shard) now also maintains one small
JSON *heartbeat* next to its progress store — rewritten atomically
(temp + rename, the repo's standard torn-read defense) a few times per
second at most — carrying progress %, evaluation rate, failure count
and a wall-clock ``updated_at``.  ``python -m repro dse status DIR``
scans a directory for heartbeats and renders fleet health, flagging
shards whose heartbeat has gone *stale* (no update within
``stale_after`` seconds — a hung or killed worker, which a progress
store alone cannot distinguish from a slow one).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = [
    "DEFAULT_STALE_AFTER",
    "HEARTBEAT_SUFFIX",
    "HeartbeatWriter",
    "heartbeat_path_for",
    "read_heartbeats",
    "render_status",
    "status_payload",
]

HEARTBEAT_SUFFIX = ".hb.json"
SCHEMA_VERSION = 1

#: A shard with no heartbeat update for this many seconds is stale.
DEFAULT_STALE_AFTER = 60.0


def heartbeat_path_for(progress_path: Union[str, Path]) -> Path:
    """Sidecar path next to a progress store: ``<store>.hb.json``."""
    progress_path = Path(progress_path).expanduser()
    return progress_path.with_name(progress_path.name + HEARTBEAT_SUFFIX)


class HeartbeatWriter:
    """Maintains one heartbeat file for a running sweep/shard.

    ``update()`` is throttled (at most one write per ``interval_s``)
    so calling it per candidate costs nothing on the hot path; the
    terminal ``finish()`` write always lands.  Write failures are
    swallowed — a full disk must degrade the *status view*, never the
    sweep itself (same contract as the cache tiers).
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        label: str = "",
        shard: Optional[str] = None,
        total: int = 0,
        interval_s: float = 0.5,
    ) -> None:
        self.path = Path(path).expanduser()
        self.label = label
        self.shard = shard
        self.total = int(total)
        self.interval_s = float(interval_s)
        self.started_at = time.time()
        self._last_write = 0.0
        self._base_done = 0  # resumed outcomes, excluded from the rate

    def set_resumed(self, resumed: int) -> None:
        """Outcomes carried over from a prior run (don't count in rate)."""
        self._base_done = int(resumed)

    def update(
        self,
        done: int,
        failed: int = 0,
        *,
        status: str = "running",
        force: bool = False,
    ) -> None:
        now = time.time()
        if not force and now - self._last_write < self.interval_s:
            return
        self._last_write = now
        elapsed = max(now - self.started_at, 1e-9)
        evaluated = max(done - self._base_done, 0)
        payload: Dict[str, Any] = {
            "schema_version": SCHEMA_VERSION,
            "label": self.label,
            "shard": self.shard,
            "pid": os.getpid(),
            "status": status,
            "total": self.total,
            "done": int(done),
            "failed": int(failed),
            "percent": round(100.0 * done / self.total, 2) if self.total else 0.0,
            "rate_per_s": round(evaluated / elapsed, 4),
            "started_at": self.started_at,
            "updated_at": now,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(
                json.dumps(payload, sort_keys=True) + "\n", encoding="utf-8"
            )
            os.replace(tmp, self.path)
        except OSError:
            pass

    def finish(self, done: int, failed: int = 0, *, status: str = "done") -> None:
        """Terminal write (never throttled): done / aborted / failed."""
        self.update(done, failed, status=status, force=True)


# ----------------------------------------------------------------------
# reading heartbeats back: `dse status DIR`
# ----------------------------------------------------------------------
def read_heartbeats(directory: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every parseable ``*.hb.json`` under ``directory`` (sorted by name).

    Each entry gains a ``"path"`` key.  Corrupt or torn files are
    skipped — atomic writes make those transient.
    """
    directory = Path(directory).expanduser()
    entries: List[Dict[str, Any]] = []
    for path in sorted(directory.glob(f"*{HEARTBEAT_SUFFIX}")):
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            continue
        if isinstance(payload, dict) and "status" in payload:
            payload["path"] = str(path)
            entries.append(payload)
    return entries


def status_payload(
    directory: Union[str, Path],
    *,
    stale_after: float = DEFAULT_STALE_AFTER,
    now: Optional[float] = None,
) -> Dict[str, Any]:
    """Machine-readable fleet status over a directory of heartbeats.

    A *running* shard whose last update is older than ``stale_after``
    is flagged ``stale`` (finished shards never are — their final write
    is expected to be the last).  ``now`` is injectable for tests.
    """
    now = time.time() if now is None else now
    shards = []
    for hb in read_heartbeats(directory):
        age = max(now - float(hb.get("updated_at", 0.0)), 0.0)
        shard = dict(hb)
        shard["age_s"] = round(age, 2)
        shard["stale"] = hb.get("status") == "running" and age > stale_after
        shards.append(shard)
    done = sum(s.get("done", 0) for s in shards)
    total = sum(s.get("total", 0) for s in shards)
    return {
        "directory": str(Path(directory).expanduser()),
        "shards": shards,
        "num_shards": len(shards),
        "running": sum(1 for s in shards if s.get("status") == "running"),
        "stale": sum(1 for s in shards if s["stale"]),
        "failed_candidates": sum(s.get("failed", 0) for s in shards),
        "done": done,
        "total": total,
        "percent": round(100.0 * done / total, 2) if total else 0.0,
    }


def render_status(payload: Dict[str, Any]) -> str:
    """Human-readable fleet-health table for one :func:`status_payload`."""
    lines = [
        f"sweep status: {payload['directory']}",
        f"  shards: {payload['num_shards']}"
        f"  running: {payload['running']}"
        f"  stale: {payload['stale']}"
        f"  progress: {payload['done']}/{payload['total']}"
        f" ({payload['percent']:.1f}%)",
    ]
    if not payload["shards"]:
        lines.append("  (no heartbeats found)")
        return "\n".join(lines)
    header = (
        f"  {'shard':<12} {'status':<8} {'done':>6} {'total':>6} "
        f"{'pct':>6} {'fail':>5} {'rate/s':>8} {'age_s':>7}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for hb in payload["shards"]:
        shard = hb.get("shard") or "-"
        status = hb.get("status", "?")
        if hb["stale"]:
            status = "STALE"
        lines.append(
            f"  {shard:<12} {status:<8} {hb.get('done', 0):>6} "
            f"{hb.get('total', 0):>6} {hb.get('percent', 0.0):>5.1f}% "
            f"{hb.get('failed', 0):>5} {hb.get('rate_per_s', 0.0):>8.2f} "
            f"{hb['age_s']:>7.1f}"
        )
    return "\n".join(lines)
