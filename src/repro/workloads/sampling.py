"""Sampling of tiling configurations (the ~100-point grids of Section 9).

For the model-validation experiments the paper samples, for each conv2d
operator, about 100 configurations "uniformly distributed in the full space
of tile-size combinations", generates code for each, and compares the
model's ranking with measured performance and hardware counters.

This module reproduces that sampler.  Configurations are drawn as follows:

* the tile-loop permutation is drawn uniformly from the eight pruned class
  representatives (plus, optionally, arbitrary random permutations so the
  sample also contains configurations *outside* the pruned set),
* per level (L1 ⊆ L2 ⊆ L3), each loop index gets a tile size drawn from the
  divisors of its extent, constrained to nest properly,
* no capacity filtering is applied — deliberately: the sample must contain
  both good and bad configurations for the ranking comparison to be
  meaningful.

Sampling is deterministic given the seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import MultiLevelConfig, TilingConfig
from ..core.pruning import pruned_representatives
from ..core.tensor_spec import ConvSpec, LOOP_INDICES, divisor_tiles


@dataclass(frozen=True)
class SamplerOptions:
    """Knobs of the configuration sampler.

    ``levels`` lists the cache levels (innermost first) to draw tiles for;
    ``max_divisors`` bounds the per-index divisor menu (keeps huge prime-ish
    extents manageable); ``include_random_permutations`` adds permutations
    outside the pruned set with the given probability.
    """

    levels: Tuple[str, ...] = ("L1", "L2", "L3")
    max_divisors: int = 12
    include_random_permutations: float = 0.25
    seed: int = 0


def _divisor_menu(spec: ConvSpec, max_divisors: int) -> Dict[str, Tuple[int, ...]]:
    return {
        index: divisor_tiles(spec.loop_extents[index], max_values=max_divisors)
        for index in LOOP_INDICES
    }


def _draw_permutation(rng: np.random.Generator, options: SamplerOptions) -> Tuple[str, ...]:
    representatives = pruned_representatives()
    if rng.random() < options.include_random_permutations:
        perm = list(LOOP_INDICES)
        rng.shuffle(perm)
        return tuple(perm)
    return representatives[int(rng.integers(len(representatives)))]


def _draw_nested_tiles(
    rng: np.random.Generator,
    menu: Dict[str, Tuple[int, ...]],
    num_levels: int,
) -> List[Dict[str, int]]:
    """Draw nested tile sizes, innermost level first."""
    per_level: List[Dict[str, int]] = []
    minimums = {index: 1 for index in LOOP_INDICES}
    for _ in range(num_levels):
        tiles: Dict[str, int] = {}
        for index in LOOP_INDICES:
            choices = [d for d in menu[index] if d >= minimums[index]]
            if not choices:
                choices = [minimums[index]]
            tiles[index] = int(choices[int(rng.integers(len(choices)))])
        per_level.append(tiles)
        minimums = dict(tiles)
    return per_level


def sample_configurations(
    spec: ConvSpec,
    *,
    count: int = 100,
    options: Optional[SamplerOptions] = None,
) -> List[MultiLevelConfig]:
    """Draw ``count`` multi-level tiling configurations for one operator.

    Duplicate configurations (possible for small operators with few
    divisors) are removed, so the returned list may be slightly shorter than
    ``count`` — matching the paper's "around 100 configurations".
    """
    options = options or SamplerOptions()
    rng = np.random.default_rng(options.seed)
    menu = _divisor_menu(spec, options.max_divisors)
    seen = set()
    configs: List[MultiLevelConfig] = []
    attempts = 0
    max_attempts = count * 20
    while len(configs) < count and attempts < max_attempts:
        attempts += 1
        permutation = _draw_permutation(rng, options)
        tiles_per_level = _draw_nested_tiles(rng, menu, len(options.levels))
        level_configs = tuple(
            TilingConfig(permutation, tiles) for tiles in tiles_per_level
        )
        config = MultiLevelConfig(options.levels, level_configs)
        key = tuple(cfg.key() for cfg in config.configs)
        if key in seen:
            continue
        seen.add(key)
        configs.append(config)
    return configs


def grid_configurations(
    spec: ConvSpec,
    permutation: Sequence[str],
    *,
    level: str = "L1",
    per_index: int = 3,
) -> List[MultiLevelConfig]:
    """Small deterministic grid of single-level configurations.

    Used by tests and the grid-search baseline: for each loop index,
    ``per_index`` divisors spread over the extent are combined (capped to a
    manageable cross product by sweeping one index at a time around a
    median configuration).
    """
    menu = _divisor_menu(spec, per_index)
    median = {index: menu[index][len(menu[index]) // 2] for index in LOOP_INDICES}
    configs: List[MultiLevelConfig] = []
    seen = set()
    for index in LOOP_INDICES:
        for value in menu[index]:
            tiles = dict(median)
            tiles[index] = value
            key = tuple(tiles[i] for i in LOOP_INDICES)
            if key in seen:
                continue
            seen.add(key)
            configs.append(
                MultiLevelConfig((level,), (TilingConfig(permutation, tiles),))
            )
    return configs
