"""Benchmark conv2d operators of Table 1 (Yolo-9000, ResNet-18, MobileNet).

The paper evaluates on all conv2d operators used by TVM's comparative
evaluation: twelve from ResNet-18, nine (depth-wise counted as regular
conv2d shapes) from MobileNet, and eleven from Yolo-9000.  Table 1 lists,
for each operator, the output channel count ``K``, input channel count
``C``, the input spatial extent ``H/W`` (square images), the kernel size
``R/S`` (square kernels), batch size 1, and stride 1 or 2 (layers marked
with ``*``).

This module reproduces that table as :class:`~repro.core.tensor_spec.ConvSpec`
instances and offers lookup helpers used by every experiment.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.tensor_spec import ConvSpec

# (name, K, C, H/W, R/S, stride)
_YOLO9000_ROWS: Tuple[Tuple[str, int, int, int, int, int], ...] = (
    ("Y0", 32, 3, 544, 3, 1),
    ("Y2", 64, 32, 272, 3, 1),
    ("Y4", 128, 64, 136, 3, 1),
    ("Y5", 64, 128, 136, 1, 1),
    ("Y8", 256, 128, 68, 3, 1),
    ("Y9", 128, 256, 68, 1, 1),
    ("Y12", 512, 256, 34, 3, 1),
    ("Y13", 256, 512, 34, 1, 1),
    ("Y18", 1024, 512, 17, 3, 1),
    ("Y19", 512, 1024, 17, 1, 1),
    ("Y23", 28269, 1024, 17, 1, 1),
)

_RESNET18_ROWS: Tuple[Tuple[str, int, int, int, int, int], ...] = (
    ("R1", 64, 3, 224, 7, 2),
    ("R2", 64, 64, 56, 3, 1),
    ("R3", 64, 64, 56, 1, 1),
    ("R4", 128, 64, 56, 3, 2),
    ("R5", 128, 64, 56, 1, 2),
    ("R6", 128, 128, 28, 3, 1),
    ("R7", 256, 128, 28, 3, 2),
    ("R8", 256, 128, 28, 3, 1),
    ("R9", 256, 256, 14, 3, 1),
    ("R10", 512, 256, 14, 3, 2),
    ("R11", 512, 256, 14, 1, 2),
    ("R12", 512, 512, 7, 3, 1),
)

_MOBILENET_ROWS: Tuple[Tuple[str, int, int, int, int, int], ...] = (
    ("M1", 32, 32, 112, 3, 1),
    ("M2", 64, 64, 112, 3, 2),
    ("M3", 128, 128, 56, 3, 1),
    ("M4", 128, 128, 56, 3, 2),
    ("M5", 256, 256, 28, 3, 1),
    ("M6", 256, 256, 28, 3, 2),
    ("M7", 512, 512, 14, 3, 1),
    ("M8", 512, 512, 14, 3, 2),
    ("M9", 1024, 1024, 7, 3, 1),
)

#: Network name → table rows, in the order the paper lists them.
_NETWORK_ROWS: Dict[str, Tuple[Tuple[str, int, int, int, int, int], ...]] = {
    "yolo9000": _YOLO9000_ROWS,
    "resnet18": _RESNET18_ROWS,
    "mobilenet": _MOBILENET_ROWS,
}


def _row_to_spec(row: Tuple[str, int, int, int, int, int], batch: int) -> ConvSpec:
    name, k, c, hw, rs, stride = row
    # "Same" padding for 3x3/7x7 stride-1 convolutions, half-kernel padding for
    # strided ones — the standard configuration of these networks, which keeps
    # the output extent at H/W (stride 1) or H/W / stride.
    padding = (rs - 1) // 2
    return ConvSpec(
        name=name,
        batch=batch,
        out_channels=k,
        in_channels=c,
        in_height=hw,
        in_width=hw,
        kernel_h=rs,
        kernel_w=rs,
        stride=stride,
        dilation=1,
        padding=padding,
    )


def network_names() -> Tuple[str, ...]:
    """Names of the three benchmark networks."""
    return tuple(_NETWORK_ROWS)


def network_benchmarks(network: str, *, batch: int = 1) -> List[ConvSpec]:
    """All conv2d operators of one network, in the paper's Table 1 order."""
    key = network.lower()
    if key not in _NETWORK_ROWS:
        raise KeyError(f"unknown network {network!r}; available: {network_names()}")
    return [_row_to_spec(row, batch) for row in _NETWORK_ROWS[key]]


def all_benchmarks(*, batch: int = 1) -> List[ConvSpec]:
    """All 32 conv2d operators of Table 1, Yolo then ResNet then MobileNet."""
    specs: List[ConvSpec] = []
    for network in network_names():
        specs.extend(network_benchmarks(network, batch=batch))
    return specs


def benchmark_by_name(name: str, *, batch: int = 1) -> ConvSpec:
    """Look up one operator by its Table 1 name (e.g. ``"Y5"``, ``"R9"``, ``"M2"``)."""
    for spec in all_benchmarks(batch=batch):
        if spec.name == name:
            return spec
    raise KeyError(f"unknown benchmark operator {name!r}")


def table1_rows() -> List[Dict[str, object]]:
    """Rows of Table 1 as dictionaries (used by the ``table1`` experiment)."""
    rows: List[Dict[str, object]] = []
    for network, raw_rows in _NETWORK_ROWS.items():
        for name, k, c, hw, rs, stride in raw_rows:
            spec = _row_to_spec((name, k, c, hw, rs, stride), batch=1)
            rows.append(
                {
                    "network": network,
                    "layer": name,
                    "K": k,
                    "C": c,
                    "H/W": hw,
                    "R/S": rs,
                    "stride": stride,
                    "N_h": spec.out_height,
                    "N_w": spec.out_width,
                    "GFLOP": spec.flops / 1e9,
                }
            )
    return rows


def figure6_operators(*, batch: int = 1) -> Dict[str, ConvSpec]:
    """The three operators highlighted in Figure 6: Resnet9, Mobnet2, Yolo5."""
    return {
        "Resnet9": benchmark_by_name("R9", batch=batch),
        "Mobnet2": benchmark_by_name("M2", batch=batch),
        "Yolo5": benchmark_by_name("Y5", batch=batch),
    }


def scaled_benchmarks(
    specs: Iterable[ConvSpec],
    *,
    max_macs: float = 2.0e8,
    max_channels: Optional[int] = None,
) -> List[ConvSpec]:
    """Scale operators down so each stays below ``max_macs`` MACs.

    The slice-level simulator used in place of hardware counters is written
    in Python; full-size early Yolo layers (hundreds of millions of MACs)
    would make the validation experiments needlessly slow.  Channel counts
    are optionally capped at ``max_channels`` first (the late, channel-heavy
    layers), then the spatial extents are scaled; kernel size, stride and
    the relative channel structure — which drive the tiling trade-offs — are
    preserved.  Operators already below the threshold are returned unchanged
    (with their original name).
    """
    from dataclasses import replace

    scaled: List[ConvSpec] = []
    for spec in specs:
        candidate = spec
        if max_channels is not None and (
            candidate.out_channels > max_channels or candidate.in_channels > max_channels
        ):
            candidate = replace(
                candidate,
                out_channels=min(candidate.out_channels, max_channels),
                in_channels=min(candidate.in_channels, max_channels),
            )
        if candidate.macs > max_macs:
            factor = (max_macs / candidate.macs) ** 0.5
            candidate = candidate.scaled(factor, name_suffix="")
        scaled.append(candidate)
    return scaled


def uniformly_scaled(spec: ConvSpec, *, max_macs: float) -> ConvSpec:
    """Shrink an operator by one common factor on channels *and* spatial extents.

    Unlike :func:`scaled_benchmarks`, which preserves channel counts exactly,
    this scales ``K``, ``C``, ``H`` and ``W`` by the same factor so that the
    *character* of each layer (channel-heavy late layers vs. spatially-large
    early layers) is preserved while the total work drops below ``max_macs``.
    The model-validation experiments use it so that every operator remains a
    distinct problem after scaling.
    """
    from dataclasses import replace

    if spec.macs <= max_macs:
        return spec
    # MACs scale roughly with K * C * H * W, i.e. with factor^4.
    factor = (max_macs / spec.macs) ** 0.25
    min_spatial = spec.effective_kernel_h + spec.stride
    candidate = replace(
        spec,
        out_channels=max(8, int(round(spec.out_channels * factor))),
        in_channels=max(4, int(round(spec.in_channels * factor))),
        in_height=max(min_spatial, int(round(spec.in_height * factor))),
        in_width=max(min_spatial, int(round(spec.in_width * factor))),
    )
    if candidate.macs > max_macs:
        # Spatial extents hit their minimum (channel-heavy 7x7 layers); take
        # the remaining reduction out of the channel dimensions.
        channel_factor = (max_macs / candidate.macs) ** 0.5
        candidate = replace(
            candidate,
            out_channels=max(8, int(round(candidate.out_channels * channel_factor))),
            in_channels=max(4, int(round(candidate.in_channels * channel_factor))),
        )
    return candidate
