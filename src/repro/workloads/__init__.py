"""Benchmark workloads (Table 1 operators) and tile-configuration sampling."""

from .benchmarks import (
    all_benchmarks,
    benchmark_by_name,
    figure6_operators,
    network_benchmarks,
    network_names,
    scaled_benchmarks,
    table1_rows,
)

__all__ = [
    "all_benchmarks",
    "benchmark_by_name",
    "figure6_operators",
    "network_benchmarks",
    "network_names",
    "scaled_benchmarks",
    "table1_rows",
]
