"""Setuptools entry point.

The pyproject.toml carries all project metadata; this shim exists so that
``pip install -e .`` works in offline environments where the ``wheel``
package (needed by PEP 517 editable installs) is unavailable and pip falls
back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
